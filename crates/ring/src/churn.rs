//! Churn-hardened routing: fault-injected lookups with retry, timeout,
//! and backoff, plus ring self-stabilization.
//!
//! The plain [`Router::lookup`](crate::routing::Router::lookup) models
//! the *converged* overlay: every message arrives, every table entry is
//! checked against the oracle ring. Under the paper's §8 failure traces
//! neither holds — nodes crash with their links still advertised
//! everywhere, rejoin unannounced, and messages to the dead simply
//! vanish. This module adds the protocol machinery that makes lookups
//! survive that regime:
//!
//! - [`Router::lookup_churn`] — greedy routing in which every hop is a
//!   real message with an injected fate (see [`FaultOracle`]): a drop
//!   or a dead peer costs a timeout, a capped-exponential backoff, and
//!   one unit of the per-lookup retry budget; peers that the follow-up
//!   liveness probes confirm dead are evicted from the prober's table,
//!   and the prober falls back to its next-closest link (ultimately its
//!   alternate successors);
//! - [`Router::stabilize_round`] — the periodic repair pass (successor-
//!   list repair, predecessor-side reconvergence, long-link refresh,
//!   dead-link eviction) that restores tables between failures, per
//!   Zave's observation that successor-list maintenance is what keeps
//!   Chord-like rings correct under churn.
//!
//! The split mirrors "How to Make Chord Correct": reactive eviction
//! keeps individual lookups live, periodic stabilization restores the
//! invariant that every live node's successor list is a prefix of the
//! true live ring order. The
//! [`prop_churn`](https://docs.rs/d2-ring) property tests assert
//! exactly that invariant after arbitrary join/leave/crash interleavings.

use crate::ring::{NodeIdx, Ring};
use crate::routing::{Router, RoutingTable};
use d2_obs::{SharedSink, TraceEvent};
use d2_types::Key;
use serde::{Deserialize, Serialize};

/// Fate of one injected routing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageFate {
    /// Delivered after `delay_us` microseconds.
    Delivered {
        /// One-way delivery delay.
        delay_us: u64,
    },
    /// Silently lost; the sender learns only by timeout.
    Dropped,
}

/// What the routing layer may ask about the world it runs in: node
/// liveness over virtual time and per-message fates.
///
/// `d2-sim`'s `FaultPlan` is the production implementation (adapted in
/// `d2-experiments`, which sees both crates); [`NoFaults`] is the
/// always-healthy control used by tests and property checks.
pub trait FaultOracle {
    /// Whether `node` is up at virtual time `t_us`.
    fn node_up(&self, node: NodeIdx, t_us: u64) -> bool;

    /// Fate of the next message, sent at `t_us`. Implementations may
    /// keep a sequence counter (hence `&mut`), but must be
    /// deterministic for a given call sequence.
    fn message_fate(&mut self, t_us: u64) -> MessageFate;
}

/// The trivial oracle: every node up, every message delivered instantly.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFaults;

impl FaultOracle for NoFaults {
    fn node_up(&self, _node: NodeIdx, _t_us: u64) -> bool {
        true
    }

    fn message_fate(&mut self, _t_us: u64) -> MessageFate {
        MessageFate::Delivered { delay_us: 0 }
    }
}

/// Retry/timeout/backoff policy for churn-hardened lookups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total retry budget per lookup (across all hops). Exhausting it
    /// fails the lookup with [`LookupOutcome::RetriesExhausted`].
    pub max_retries: u32,
    /// How long a prober waits before declaring a hop dead, µs.
    pub hop_timeout_us: u64,
    /// First-retry backoff, µs; doubles per retry.
    pub backoff_base_us: u64,
    /// Upper bound on any single backoff, µs.
    pub backoff_cap_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Timeout ≈ 5× the ~90 ms mean RTT of the latency matrix;
        // backoff 100 ms → 200 ms → … capped at 2 s.
        RetryPolicy {
            max_retries: 8,
            hop_timeout_us: 500_000,
            backoff_base_us: 100_000,
            backoff_cap_us: 2_000_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): capped exponential
    /// `base · 2^(retry-1)`.
    pub fn backoff_us(&self, retry: u32) -> u64 {
        let shift = retry.saturating_sub(1).min(20);
        self.backoff_base_us
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_us)
    }
}

/// How a churn-hardened lookup ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LookupOutcome {
    /// Reached the live owner of the key.
    Success,
    /// The per-lookup retry budget ran out.
    RetriesExhausted,
    /// No usable link remained (isolated prober, empty ring, or the
    /// hop cap tripped on a stale-table orbit).
    NoRoute,
}

/// Statistics from one fault-injected lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnLookup {
    /// Terminal outcome.
    pub outcome: LookupOutcome,
    /// The live owner, when the lookup succeeded.
    pub owner: Option<NodeIdx>,
    /// Successful forwarding hops.
    pub hops: u32,
    /// Retries consumed (each one timeout + backoff); never exceeds
    /// [`RetryPolicy::max_retries`].
    pub retries: u32,
    /// Hop attempts that timed out (drop or dead peer).
    pub timeouts: u32,
    /// Messages sent, including the failed attempts.
    pub messages: u32,
    /// Total virtual latency: delivery delays + timeouts + backoffs.
    pub latency_us: u64,
}

impl ChurnLookup {
    /// Whether the lookup reached the owner.
    pub fn ok(&self) -> bool {
        self.outcome == LookupOutcome::Success
    }
}

/// Statistics from one stabilization round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StabilizeStats {
    /// Live nodes whose tables were refreshed.
    pub nodes: u32,
    /// Links added or retargeted (successor repair + long-link refresh).
    pub repaired: u32,
    /// Stale links removed (dead or departed peers).
    pub evicted: u32,
}

impl Router {
    /// Routes a lookup for `key` from `from` through the (possibly
    /// stale) tables, with every hop subject to `faults` and failures
    /// handled per `policy`.
    ///
    /// Each hop sends a real message: a drop or a dead peer costs
    /// [`RetryPolicy::hop_timeout_us`] plus a capped-exponential
    /// backoff and one unit of the retry budget. A peer that the
    /// follow-up liveness probes confirm dead is evicted from the
    /// prober's table ([`Router::evict_link`] — never the last link),
    /// and the prober falls back to its next-closest preceding link,
    /// ultimately walking its alternate successors; a live peer that
    /// merely lost a packet keeps its links and is simply retried.
    /// Termination is checked against `live` (the oracle membership):
    /// the lookup succeeds when it reaches the node that currently owns
    /// `key` among live nodes. A hop cap of `O(log n)` bounds orbiting
    /// on stale tables (e.g. a successor link that overshoots a
    /// just-rejoined owner), converting it into [`LookupOutcome::NoRoute`].
    ///
    /// Takes `&mut self` because failed links are evicted as a side
    /// effect — the negative feedback that lets consecutive lookups
    /// converge while stabilization is still pending.
    pub fn lookup_churn<F: FaultOracle>(
        &mut self,
        live: &Ring,
        from: NodeIdx,
        key: &Key,
        policy: &RetryPolicy,
        faults: &mut F,
        t_us: u64,
    ) -> ChurnLookup {
        let mut s = ChurnLookup {
            outcome: LookupOutcome::NoRoute,
            owner: None,
            hops: 0,
            retries: 0,
            timeouts: 0,
            messages: 0,
            latency_us: 0,
        };
        let Some(target) = live.owner_of(key) else {
            return s;
        };
        let hop_cap = 4 * (usize::BITS - live.len().leading_zeros()) + 16;
        let mut elapsed = 0u64;
        let mut cur = from;
        'route: while cur != target {
            if s.hops > hop_cap {
                break 'route; // stale-table orbit: give up (NoRoute)
            }
            // Attempt loop at `cur`: greedy candidate, then successively
            // closer links as confirmed-dead peers are evicted (a live
            // peer that dropped a packet stays the candidate and is
            // retried).
            loop {
                let cand = self.table(cur).and_then(|t| {
                    t.closest_preceding(key)
                        .map(|(_, p)| p)
                        .or_else(|| t.links.first().map(|&(_, p)| p))
                });
                let Some(peer) = cand else {
                    break 'route; // isolated: no links left (NoRoute)
                };
                s.messages += 1;
                let delivered = match faults.message_fate(t_us + elapsed) {
                    MessageFate::Dropped => None,
                    MessageFate::Delivered { delay_us } => faults
                        .node_up(peer, t_us + elapsed + delay_us)
                        .then_some(delay_us),
                };
                match delivered {
                    Some(delay_us) => {
                        elapsed += delay_us;
                        s.hops += 1;
                        cur = peer;
                        continue 'route;
                    }
                    None => {
                        s.timeouts += 1;
                        elapsed += policy.hop_timeout_us;
                        if s.retries >= policy.max_retries {
                            s.outcome = LookupOutcome::RetriesExhausted;
                            s.latency_us = elapsed;
                            return s;
                        }
                        s.retries += 1;
                        elapsed += policy.backoff_us(s.retries);
                        // The timeout triggers liveness probes of the
                        // peer; only a peer that is *actually* down fails
                        // them and gets evicted (abstracting the
                        // consecutive-timeout death detector — a live
                        // peer whose message was dropped answers its
                        // probes and keeps its links, so one lost packet
                        // cannot sever a successor chain). If the dead
                        // peer was the last link the eviction is refused
                        // and the retry goes back to it (keep-your-last-
                        // successor rule; the budget bounds the loop).
                        if !faults.node_up(peer, t_us + elapsed) {
                            self.evict_link(cur, peer);
                        }
                    }
                }
            }
        }
        if cur == target {
            s.outcome = LookupOutcome::Success;
            s.owner = Some(target);
        }
        s.latency_us = elapsed;
        s
    }

    /// [`Router::lookup_churn`] plus a [`TraceEvent::ChurnLookup`]
    /// record in `sink`. With a null sink the event is never built.
    #[allow(clippy::too_many_arguments)]
    pub fn lookup_churn_traced<F: FaultOracle>(
        &mut self,
        live: &Ring,
        from: NodeIdx,
        key: &Key,
        policy: &RetryPolicy,
        faults: &mut F,
        t_us: u64,
        sink: &SharedSink,
    ) -> ChurnLookup {
        let s = self.lookup_churn(live, from, key, policy, faults, t_us);
        sink.record_with(|| TraceEvent::ChurnLookup {
            t_us,
            from: from.0,
            key: key.to_u64_lossy(),
            ok: s.ok(),
            hops: s.hops,
            retries: s.retries,
            timeouts: s.timeouts,
            latency_us: s.latency_us,
        });
        s
    }

    /// One stabilization step for a single live node: rebuilds its
    /// successor list and long links from the live ring, returning
    /// `(repaired, evicted)` link counts. A node absent from `live`
    /// keeps its (frozen) table — a crashed node's state survives on
    /// disk and is refreshed when it rejoins.
    ///
    /// This models the *converged result* of Chord/Mercury maintenance
    /// traffic — each node asking its successor for its successor list,
    /// probing its predecessor, and re-resolving long-link targets —
    /// rather than the individual messages; the live deployment in
    /// `d2-net` runs the message-level version (`ProtocolNode::tick`).
    pub fn stabilize_node(&mut self, live: &Ring, node: NodeIdx) -> (u32, u32) {
        let Some(fresh) = RoutingTable::build(live, node, self.succ_count()) else {
            return (0, 0);
        };
        let (repaired, evicted) = match self.table(node) {
            Some(old) => {
                let gained = fresh
                    .links
                    .iter()
                    .filter(|l| !old.links.contains(l))
                    .count();
                let lost = old
                    .links
                    .iter()
                    .filter(|l| !fresh.links.contains(l))
                    .count();
                (gained as u32, lost as u32)
            }
            None => (fresh.links.len() as u32, 0),
        };
        self.set_table(node, Some(fresh));
        (repaired, evicted)
    }

    /// One full stabilization round: every live node repairs its
    /// successor list, refreshes its long links, and drops links to
    /// dead or departed peers. After a round, every live node's
    /// successor links are exactly the live ring's successors — the
    /// consistency invariant the churn property tests assert.
    pub fn stabilize_round(&mut self, live: &Ring) -> StabilizeStats {
        let mut stats = StabilizeStats::default();
        for node in live.nodes() {
            let (repaired, evicted) = self.stabilize_node(live, node);
            stats.nodes += 1;
            stats.repaired += repaired;
            stats.evicted += evicted;
        }
        stats
    }

    /// [`Router::stabilize_round`] plus a [`TraceEvent::Stabilize`]
    /// record in `sink`.
    pub fn stabilize_round_traced(
        &mut self,
        live: &Ring,
        t_us: u64,
        sink: &SharedSink,
    ) -> StabilizeStats {
        let stats = self.stabilize_round(live);
        sink.record_with(|| TraceEvent::Stabilize {
            t_us,
            nodes: stats.nodes,
            repaired: stats.repaired,
            evicted: stats.evicted,
        });
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Scripted oracle: a set of dead nodes plus an optional forced-drop
    /// schedule (message n is dropped when `drops` contains n).
    struct Scripted {
        dead: HashSet<usize>,
        drops: HashSet<u64>,
        sent: u64,
        delay_us: u64,
    }

    impl Scripted {
        fn healthy() -> Scripted {
            Scripted {
                dead: HashSet::new(),
                drops: HashSet::new(),
                sent: 0,
                delay_us: 1000,
            }
        }
    }

    impl FaultOracle for Scripted {
        fn node_up(&self, node: NodeIdx, _t_us: u64) -> bool {
            !self.dead.contains(&node.0)
        }

        fn message_fate(&mut self, _t_us: u64) -> MessageFate {
            let n = self.sent;
            self.sent += 1;
            if self.drops.contains(&n) {
                MessageFate::Dropped
            } else {
                MessageFate::Delivered {
                    delay_us: self.delay_us,
                }
            }
        }
    }

    fn uniform_ring(n: usize) -> Ring {
        let mut ring = Ring::new();
        for i in 0..n {
            ring.add_node(Key::from_fraction(i as f64 / n as f64));
        }
        ring
    }

    #[test]
    fn no_faults_matches_plain_lookup() {
        let ring = uniform_ring(64);
        let mut router = Router::build(&ring, 4);
        let policy = RetryPolicy::default();
        for i in 0..50 {
            let from = ring.node_at_rank(i * 7).unwrap();
            let key = Key::from_fraction((i as f64 * 0.173) % 1.0);
            let plain = router.lookup(&ring, from, &key).unwrap();
            let churn = router.lookup_churn(&ring, from, &key, &policy, &mut NoFaults, 0);
            assert_eq!(churn.outcome, LookupOutcome::Success);
            assert_eq!(churn.owner, Some(plain.owner));
            assert_eq!(churn.hops, plain.hops, "same route when nothing fails");
            assert_eq!(churn.retries, 0);
            assert_eq!(churn.timeouts, 0);
        }
    }

    #[test]
    fn dead_successor_falls_back_to_alternate() {
        let ring = uniform_ring(32);
        let mut router = Router::build(&ring, 4);
        // Kill the owner's predecessor-side route: make the node right
        // before the key's owner dead, but leave it in the live ring's
        // predecessor's table.
        let key = Key::from_fraction(0.51);
        let mut live = ring.clone();
        let dead_node = live.owner_of(&key).unwrap();
        live.remove_node(dead_node); // crashed: tables still point at it
        let mut faults = Scripted::healthy();
        faults.dead.insert(dead_node.0);

        let from = live.node_at_rank(0).unwrap();
        let policy = RetryPolicy::default();
        let s = router.lookup_churn(&live, from, &key, &policy, &mut faults, 0);
        assert_eq!(s.outcome, LookupOutcome::Success);
        assert_eq!(s.owner, live.owner_of(&key));
        assert!(s.retries >= 1, "must have retried past the dead node");
        assert_eq!(s.timeouts, s.retries);
    }

    #[test]
    fn eviction_learns_across_lookups() {
        let ring = uniform_ring(32);
        let mut router = Router::build(&ring, 4);
        let key = Key::from_fraction(0.51);
        let mut live = ring.clone();
        let dead_node = live.owner_of(&key).unwrap();
        live.remove_node(dead_node);
        let mut faults = Scripted::healthy();
        faults.dead.insert(dead_node.0);
        let from = live.node_at_rank(0).unwrap();
        let policy = RetryPolicy::default();
        let first = router.lookup_churn(&live, from, &key, &policy, &mut faults, 0);
        let second = router.lookup_churn(&live, from, &key, &policy, &mut faults, 0);
        assert!(first.ok() && second.ok());
        assert!(
            second.retries < first.retries || second.retries == 0,
            "evicted links must not be retried: {} then {}",
            first.retries,
            second.retries
        );
    }

    #[test]
    fn retry_budget_is_respected_and_capped() {
        let ring = uniform_ring(8);
        let mut router = Router::build(&ring, 2);
        let from = ring.node_at_rank(0).unwrap();
        let key = Key::from_fraction(0.6);
        // Everything except the requester is dead: no lookup can finish.
        let mut faults = Scripted::healthy();
        for n in ring.nodes() {
            if n != from {
                faults.dead.insert(n.0);
            }
        }
        let policy = RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        };
        let s = router.lookup_churn(&ring, from, &key, &policy, &mut faults, 0);
        assert_eq!(s.outcome, LookupOutcome::RetriesExhausted);
        assert_eq!(s.retries, policy.max_retries);
        assert!(s.owner.is_none());
    }

    #[test]
    fn drops_cost_retries_but_not_correctness() {
        let ring = uniform_ring(64);
        let mut router = Router::build(&ring, 4);
        let from = ring.node_at_rank(3).unwrap();
        let key = Key::from_fraction(0.77);
        let mut faults = Scripted::healthy();
        faults.drops.insert(0); // first message lost
        let policy = RetryPolicy::default();
        let s = router.lookup_churn(&ring, from, &key, &policy, &mut faults, 0);
        assert_eq!(s.outcome, LookupOutcome::Success);
        assert_eq!(s.retries, 1);
        assert_eq!(s.timeouts, 1);
        assert!(
            s.latency_us >= policy.hop_timeout_us + policy.backoff_us(1),
            "latency must include the timeout and backoff"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            hop_timeout_us: 1,
            backoff_base_us: 100,
            backoff_cap_us: 450,
        };
        assert_eq!(p.backoff_us(1), 100);
        assert_eq!(p.backoff_us(2), 200);
        assert_eq!(p.backoff_us(3), 400);
        assert_eq!(p.backoff_us(4), 450);
        assert_eq!(p.backoff_us(30), 450);
    }

    #[test]
    fn self_lookup_costs_nothing_even_under_faults() {
        let ring = uniform_ring(16);
        let mut router = Router::build(&ring, 4);
        let node = ring.node_at_rank(5).unwrap();
        let own_id = ring.id_of(node).unwrap();
        let mut faults = Scripted::healthy();
        faults.drops.extend(0..100);
        let s = router.lookup_churn(
            &ring,
            node,
            &own_id,
            &RetryPolicy::default(),
            &mut faults,
            0,
        );
        assert_eq!(s.outcome, LookupOutcome::Success);
        assert_eq!(s.messages, 0);
        assert_eq!(s.latency_us, 0);
    }

    #[test]
    fn stabilize_round_restores_successor_lists() {
        let ring = uniform_ring(32);
        let mut router = Router::build(&ring, 4);
        let mut live = ring.clone();
        // Crash a quarter of the nodes.
        for i in 0..8 {
            live.remove_node(ring.node_at_rank(i * 4).unwrap());
        }
        let stats = router.stabilize_round(&live);
        assert_eq!(stats.nodes as usize, live.len());
        assert!(stats.evicted > 0, "dead links must be evicted");
        // Invariant: every live node's first links are the live successors.
        for node in live.nodes() {
            let t = router.table(node).unwrap();
            let succ = live.successor(node).unwrap();
            assert_eq!(t.links.first().map(|&(_, p)| p), Some(succ));
            for &(id, peer) in &t.links {
                assert_eq!(live.id_of(peer), Some(id), "no stale links remain");
            }
        }
    }

    #[test]
    fn stabilize_after_rejoin_relinks_the_returner() {
        let ring = uniform_ring(16);
        let mut router = Router::build(&ring, 3);
        let mut live = ring.clone();
        let crashed = ring.node_at_rank(7).unwrap();
        let old_id = live.remove_node(crashed).unwrap();
        router.stabilize_round(&live);
        // Nobody links to the crashed node now.
        for node in live.nodes() {
            assert!(router
                .table(node)
                .unwrap()
                .links
                .iter()
                .all(|&(_, p)| p != crashed));
        }
        // Rejoin and stabilize: the returner is linked again.
        assert!(live.add_node_at(crashed, old_id));
        router.rebuild_node(&live, crashed);
        let stats = router.stabilize_round(&live);
        assert!(stats.repaired > 0);
        let pred = live.predecessor(crashed).unwrap();
        let t = router.table(pred).unwrap();
        assert_eq!(t.links.first().map(|&(_, p)| p), Some(crashed));
    }

    #[test]
    fn evict_link_keeps_the_last_one() {
        let ring = uniform_ring(4);
        let mut router = Router::build(&ring, 1);
        let node = ring.node_at_rank(0).unwrap();
        let links: Vec<NodeIdx> = router
            .table(node)
            .unwrap()
            .links
            .iter()
            .map(|&(_, p)| p)
            .collect();
        for (i, peer) in links.iter().enumerate() {
            let removed = router.evict_link(node, *peer);
            if i + 1 < links.len() {
                assert!(removed);
            } else {
                assert!(!removed, "last link must survive");
            }
        }
        assert_eq!(router.table(node).unwrap().links.len(), 1);
    }

    #[test]
    fn traced_variants_record_events() {
        let ring = uniform_ring(32);
        let mut router = Router::build(&ring, 4);
        let sink = SharedSink::memory(0);
        let from = ring.node_at_rank(1).unwrap();
        let key = Key::from_fraction(0.4);
        let s = router.lookup_churn_traced(
            &ring,
            from,
            &key,
            &RetryPolicy::default(),
            &mut NoFaults,
            123,
            &sink,
        );
        router.stabilize_round_traced(&ring, 456, &sink);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        match &events[0] {
            TraceEvent::ChurnLookup {
                t_us,
                ok,
                hops,
                retries,
                ..
            } => {
                assert_eq!(*t_us, 123);
                assert!(ok);
                assert_eq!(*hops, s.hops);
                assert_eq!(*retries, 0);
            }
            other => panic!("expected ChurnLookup, got {other:?}"),
        }
        match &events[1] {
            TraceEvent::Stabilize { t_us, nodes, .. } => {
                assert_eq!(*t_us, 456);
                assert_eq!(*nodes, 32);
            }
            other => panic!("expected Stabilize, got {other:?}"),
        }
        // Null sink: outcomes identical, nothing recorded.
        let null = SharedSink::null();
        router.lookup_churn_traced(
            &ring,
            from,
            &key,
            &RetryPolicy::default(),
            &mut NoFaults,
            0,
            &null,
        );
        assert!(null.drain().is_empty());
    }

    #[test]
    fn empty_ring_is_no_route() {
        let mut router = Router::default();
        let live = Ring::new();
        let s = router.lookup_churn(
            &live,
            NodeIdx(0),
            &Key::from_fraction(0.5),
            &RetryPolicy::default(),
            &mut NoFaults,
            0,
        );
        assert_eq!(s.outcome, LookupOutcome::NoRoute);
    }
}
