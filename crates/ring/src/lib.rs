//! The DHT ring substrate for D2.
//!
//! This crate implements the dynamic-load-balancing DHT the paper builds on
//! (a Mercury-style ring [Bharambe et al., SIGCOMM 2004] running the
//! Karger–Ruhl item-balancing algorithm [SPAA 2004]):
//!
//! - [`Ring`] — authoritative ring membership: node positions, ownership
//!   ranges, successor lists / replica groups. This is the "all facets
//!   except DHT routing" view used by the paper's simulators (Section 8.1).
//! - [`routing`] — per-node routing tables with successor links and
//!   Mercury-style long links, plus greedy recursive routing with hop and
//!   message accounting for the performance experiments (Section 9.2).
//! - [`balance`] — the active load-balancing algorithm of Section 6: each
//!   node periodically probes a random node and, when the load ratio
//!   exceeds `t` (= 4), rejoins as the heavy node's predecessor at the key
//!   that splits the heavy node's load in half.
//! - [`node`] — a message-level protocol state machine (join, stabilize,
//!   recursive lookup) used by the threaded live deployment in `d2-net`.
//! - [`churn`] — churn-hardened routing: fault-injected lookups with
//!   retries, per-hop timeouts, capped exponential backoff, and alternate-
//!   successor fallback, plus the periodic self-stabilization pass that
//!   repairs successor lists and evicts dead links (Section 8 failure
//!   model).
//!
//! # Examples
//!
//! ```
//! use d2_ring::Ring;
//! use d2_types::Key;
//!
//! let mut ring = Ring::new();
//! let a = ring.add_node(Key::from_fraction(0.25));
//! let b = ring.add_node(Key::from_fraction(0.75));
//! // Key at 0.5 is owned by the node at 0.75 (its successor).
//! assert_eq!(ring.owner_of(&Key::from_fraction(0.5)), Some(b));
//! assert_eq!(ring.owner_of(&Key::from_fraction(0.9)), Some(a)); // wraps
//! ```

#![warn(missing_docs)]

pub mod balance;
pub mod churn;
pub mod messages;
pub mod node;
pub mod ring;
pub mod routing;

pub use balance::{BalanceConfig, BalanceOp, LoadView};
pub use churn::{
    ChurnLookup, FaultOracle, LookupOutcome, MessageFate, NoFaults, RetryPolicy, StabilizeStats,
};
pub use ring::{NodeIdx, Ring};
pub use routing::{LookupStats, RoutingTable};
