//! Wire messages for the message-level ring protocol ([`crate::node`]).

use d2_types::{Key, KeyRange};
use serde::{Deserialize, Serialize};

/// Transport address of a node. In the in-process deployments this is the
/// node's index; a TCP transport would map it to a socket address.
pub type Addr = usize;

/// A `(ring position, transport address)` pair describing a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerInfo {
    /// The peer's current ring position.
    pub id: Key,
    /// Where to send messages for this peer.
    pub addr: Addr,
}

/// Ring maintenance and lookup messages.
///
/// Lookups are *recursive* (each hop forwards the request, the owner
/// replies directly to the origin), matching Mercury's lookup style
/// described in Section 7.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RingMsg {
    /// Route this request to the owner of `target`.
    FindOwner {
        /// Key being located.
        target: Key,
        /// Node that issued the lookup (receives the reply).
        origin: Addr,
        /// Correlates the eventual [`RingMsg::OwnerIs`] reply.
        req_id: u64,
        /// Hops taken so far (for statistics).
        hops: u32,
    },
    /// Reply to [`RingMsg::FindOwner`], sent by the owner to the origin.
    OwnerIs {
        /// Correlates with the request.
        req_id: u64,
        /// The owner's identity.
        owner: PeerInfo,
        /// The owner's current ownership range (cacheable by lookup
        /// caches — this is what D2-Store stores, Section 5).
        range: KeyRange,
        /// The owner's successor list (replica group tail).
        successors: Vec<PeerInfo>,
        /// Total forwarding hops the request took.
        hops: u32,
    },
    /// A joining node (already placed at `joiner.id`) announces itself to
    /// the owner of its ID; routed like a lookup.
    Join {
        /// The joining node.
        joiner: PeerInfo,
        /// Hops so far.
        hops: u32,
    },
    /// Reply to [`RingMsg::Join`] from the joiner's new successor.
    JoinAck {
        /// The successor that admitted the joiner.
        successor: PeerInfo,
        /// The successor's predecessor at admission time (the joiner's
        /// initial predecessor candidate).
        predecessor: Option<PeerInfo>,
        /// The successor's successor list for seeding the joiner's.
        successors: Vec<PeerInfo>,
    },
    /// Periodic: ask a peer for its neighbor state.
    GetNeighbors {
        /// Who is asking (receives the [`RingMsg::Neighbors`] reply).
        from: Addr,
    },
    /// Reply to [`RingMsg::GetNeighbors`].
    Neighbors {
        /// The responding peer.
        me: PeerInfo,
        /// Its current predecessor.
        predecessor: Option<PeerInfo>,
        /// Its successor list.
        successors: Vec<PeerInfo>,
    },
    /// Chord-style notify: "I believe I am your predecessor."
    Notify {
        /// The candidate predecessor.
        candidate: PeerInfo,
    },
}
