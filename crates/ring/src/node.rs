//! A message-level ring node state machine.
//!
//! [`ProtocolNode`] implements join, Chord-style stabilization, and
//! recursive greedy lookup as a pure state machine: every input
//! ([`ProtocolNode::handle`] for messages, [`ProtocolNode::tick`] for
//! timers) returns the messages to transmit. The same code therefore runs
//! under any transport — `d2-net` drives it with threads and channels, and
//! tests drive it with a simple in-memory message pump.

use crate::messages::{Addr, PeerInfo, RingMsg};
use d2_types::{Key, KeyRange};
use std::collections::HashMap;

/// Forwarding budget for a `Join` before it is dropped (the joiner
/// retries on a timer); greedy routing over transiently inconsistent
/// successor lists can otherwise cycle a join between two nodes forever.
const JOIN_MAX_HOPS: u32 = 64;

/// Outcome of a completed lookup, surfaced to the embedding layer.
#[derive(Clone, Debug, PartialEq)]
pub struct LookupResult {
    /// Request id the embedding layer supplied.
    pub req_id: u64,
    /// The owner of the looked-up key.
    pub owner: PeerInfo,
    /// The owner's ownership range (for lookup caches).
    pub range: KeyRange,
    /// The owner's successor list (replica locations).
    pub successors: Vec<PeerInfo>,
    /// Forwarding hops the request took.
    pub hops: u32,
}

/// Configuration for a protocol node.
#[derive(Clone, Copy, Debug)]
pub struct NodeConfig {
    /// Successor-list length (fault tolerance of ring pointers).
    pub successors: usize,
    /// Maximum long links retained from observed lookup traffic.
    pub max_fingers: usize,
    /// Fault-injection knob for the deterministic simulation harness:
    /// re-introduces PR 4's head-only successor probing (a dead tail
    /// entry is then never probed/evicted and can wedge stabilization
    /// ring-wide). `d2-dst` flips it to prove its schedule explorer
    /// catches the historical bug; it must stay `false` everywhere else.
    #[doc(hidden)]
    pub probe_head_only: bool,
    /// Ticks between seed-anchored anti-entropy rounds (`0` disables
    /// them). A joined node periodically re-introduces itself to its
    /// join seed (Notify + GetNeighbors), which is what lets two rings
    /// that formed on either side of a healed multi-node netsplit merge
    /// back into one — plain Chord stabilization alone never rejoins
    /// disjoint rings.
    pub anchor_every_ticks: u64,
    /// Fault-injection knob for the deterministic simulation harness:
    /// replica-chain puts ack the client optimistically as soon as the
    /// forward *send* succeeds, instead of waiting for the end of the
    /// chain to confirm. Harmless when dead peers fail sends fast, but
    /// a silent one-way link cut turns the early ack into a durability
    /// lie — exactly the failure mode the asymmetric-partition worlds
    /// exist to catch. Must stay `false` everywhere else.
    #[doc(hidden)]
    pub ack_on_send: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            successors: 4,
            max_fingers: 32,
            probe_head_only: false,
            anchor_every_ticks: 64,
            ack_on_send: false,
        }
    }
}

/// A ring node driven by messages and periodic ticks.
#[derive(Debug)]
pub struct ProtocolNode {
    me: PeerInfo,
    cfg: NodeConfig,
    predecessor: Option<PeerInfo>,
    successors: Vec<PeerInfo>,
    /// Long links harvested from lookup replies (Mercury builds its long
    /// links by sampling; harvesting reply traffic converges similarly).
    fingers: Vec<PeerInfo>,
    /// Lookups we originated and are waiting on.
    pending: HashMap<u64, Key>,
    /// Completed lookups not yet collected by the embedding layer.
    completed: Vec<LookupResult>,
    next_req: u64,
}

impl ProtocolNode {
    /// Creates the very first node of a ring (it is its own successor).
    pub fn bootstrap(id: Key, addr: Addr, cfg: NodeConfig) -> Self {
        let me = PeerInfo { id, addr };
        ProtocolNode {
            me,
            cfg,
            predecessor: Some(me),
            successors: Vec::new(),
            fingers: Vec::new(),
            pending: HashMap::new(),
            completed: Vec::new(),
            next_req: 1,
        }
    }

    /// Creates a node that will join via `seed`. Returns the node and the
    /// join message to send to the seed.
    pub fn join(id: Key, addr: Addr, cfg: NodeConfig, seed: Addr) -> (Self, Vec<(Addr, RingMsg)>) {
        let me = PeerInfo { id, addr };
        let node = ProtocolNode {
            me,
            cfg,
            predecessor: None,
            successors: Vec::new(),
            fingers: Vec::new(),
            pending: HashMap::new(),
            completed: Vec::new(),
            next_req: 1,
        };
        (
            node,
            vec![(
                seed,
                RingMsg::Join {
                    joiner: me,
                    hops: 0,
                },
            )],
        )
    }

    /// This node's identity.
    pub fn me(&self) -> PeerInfo {
        self.me
    }

    /// The configuration the node was constructed with.
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// Current predecessor, if known.
    pub fn predecessor(&self) -> Option<PeerInfo> {
        self.predecessor
    }

    /// Current successor list.
    pub fn successors(&self) -> &[PeerInfo] {
        &self.successors
    }

    /// Whether the node has joined a ring (has a successor).
    pub fn is_joined(&self) -> bool {
        !self.successors.is_empty()
    }

    /// The range of keys this node believes it owns.
    pub fn owned_range(&self) -> Option<KeyRange> {
        let pred = self.predecessor?;
        if pred.addr == self.me.addr {
            return Some(KeyRange::full());
        }
        Some(KeyRange::new(pred.id, self.me.id))
    }

    /// Starts a lookup for `key`; returns the request id and the messages
    /// to send. The result arrives later via [`ProtocolNode::take_completed`].
    pub fn start_lookup(&mut self, key: Key) -> (u64, Vec<(Addr, RingMsg)>) {
        let req_id = self.next_req;
        self.next_req += 1;
        self.pending.insert(req_id, key);
        let msg = RingMsg::FindOwner {
            target: key,
            origin: self.me.addr,
            req_id,
            hops: 0,
        };
        // Process locally first: we may own the key ourselves.
        let out = self.route_find(msg);
        (req_id, out)
    }

    /// Drains lookups that have completed since the last call.
    pub fn take_completed(&mut self) -> Vec<LookupResult> {
        std::mem::take(&mut self.completed)
    }

    /// Handles an incoming message, returning messages to transmit.
    pub fn handle(&mut self, msg: RingMsg) -> Vec<(Addr, RingMsg)> {
        match msg {
            RingMsg::FindOwner { .. } => self.route_find(msg),
            RingMsg::OwnerIs {
                req_id,
                owner,
                range,
                successors,
                hops,
            } => {
                if self.pending.remove(&req_id).is_some() {
                    self.learn(owner);
                    self.completed.push(LookupResult {
                        req_id,
                        owner,
                        range,
                        successors,
                        hops,
                    });
                }
                vec![]
            }
            RingMsg::Join { joiner, hops } => self.handle_join(joiner, hops),
            RingMsg::JoinAck {
                successor,
                predecessor,
                successors,
            } => {
                self.adopt_successor(successor);
                for s in successors {
                    self.learn(s);
                    self.push_successor(s);
                }
                if let Some(p) = predecessor {
                    if p.addr != self.me.addr {
                        self.predecessor = Some(p);
                    }
                }
                // Tell our new successor we exist.
                vec![(successor.addr, RingMsg::Notify { candidate: self.me })]
            }
            RingMsg::GetNeighbors { from } => {
                vec![(
                    from,
                    RingMsg::Neighbors {
                        me: self.me,
                        predecessor: self.predecessor,
                        successors: self.successors.clone(),
                    },
                )]
            }
            RingMsg::Neighbors {
                me,
                predecessor,
                successors,
            } => {
                self.learn(me);
                // Chord stabilize: if our successor's predecessor sits
                // between us and the successor, it becomes our successor.
                if let Some(p) = predecessor {
                    if let Some(first) = self.successors.first().copied() {
                        if first.addr == me.addr
                            && p.addr != self.me.addr
                            && KeyRange::new(self.me.id, first.id).contains(&p.id)
                            && p.id != first.id
                        {
                            self.successors.insert(0, p);
                            self.truncate_successors();
                            return vec![(p.addr, RingMsg::Notify { candidate: self.me })];
                        }
                    }
                }
                for s in successors {
                    if s.addr != self.me.addr {
                        self.push_successor(s);
                    }
                }
                if let Some(first) = self.successors.first().copied() {
                    return vec![(first.addr, RingMsg::Notify { candidate: self.me })];
                }
                vec![]
            }
            RingMsg::Notify { candidate } => {
                let adopt = match self.predecessor {
                    None => true,
                    Some(p) if p.addr == self.me.addr => true,
                    Some(p) => {
                        KeyRange::new(p.id, self.me.id).contains(&candidate.id)
                            && candidate.id != self.me.id
                    }
                };
                if adopt && candidate.addr != self.me.addr {
                    self.predecessor = Some(candidate);
                }
                if self.successors.is_empty() && candidate.addr != self.me.addr {
                    // Degenerate bootstrap: first peer we hear of closes
                    // the ring.
                    self.push_successor(candidate);
                }
                self.learn(candidate);
                vec![]
            }
        }
    }

    /// Periodic maintenance: stabilize with *every* successor and probe
    /// the predecessor (Chord's `check_predecessor`) — a transport-level
    /// send failure makes the embedding layer call
    /// [`ProtocolNode::forget`], clearing the dead pointer so the true
    /// predecessor's next notify is adopted and no key range goes
    /// unowned.
    ///
    /// Probing the whole successor list (it is capped at
    /// [`NodeConfig::successors`]) and not just its head matters after a
    /// crash: a dead node in the *tail* of some neighbor's list is never
    /// the target of that neighbor's sends, so nothing would ever evict
    /// it, and its `Neighbors` advertisements keep re-inserting the dead
    /// peer at the head of the lists of the nodes immediately before it
    /// — which then probe a dead first successor every tick and can
    /// never walk past it to their true successor. Probing the full list
    /// evicts dead entries ring-wide within one tick, drying up the
    /// re-advertisement at its source.
    pub fn tick(&mut self) -> Vec<(Addr, RingMsg)> {
        let mut out: Vec<(Addr, RingMsg)> = Vec::with_capacity(self.successors.len() + 1);
        // `probe_head_only` deliberately resurrects the PR 4 bug for
        // DST-harness validation (see `NodeConfig::probe_head_only`).
        let probed = if self.cfg.probe_head_only {
            &self.successors[..self.successors.len().min(1)]
        } else {
            &self.successors[..]
        };
        for s in probed {
            if s.addr != self.me.addr {
                out.push((s.addr, RingMsg::GetNeighbors { from: self.me.addr }));
            }
        }
        if let Some(p) = self.predecessor {
            if p.addr != self.me.addr && !out.iter().any(|(a, _)| *a == p.addr) {
                out.push((p.addr, RingMsg::GetNeighbors { from: self.me.addr }));
            }
        }
        out
    }

    /// Removes a peer believed dead from all pointers.
    pub fn forget(&mut self, addr: Addr) {
        self.successors.retain(|p| p.addr != addr);
        self.fingers.retain(|p| p.addr != addr);
        if self.predecessor.map(|p| p.addr) == Some(addr) {
            self.predecessor = None;
        }
    }

    fn route_find(&mut self, msg: RingMsg) -> Vec<(Addr, RingMsg)> {
        let RingMsg::FindOwner {
            target,
            origin,
            req_id,
            hops,
        } = msg
        else {
            return vec![];
        };
        if self.owns(&target) {
            let reply = RingMsg::OwnerIs {
                req_id,
                owner: self.me,
                range: self.owned_range().unwrap_or_else(KeyRange::full),
                successors: self.successors.clone(),
                hops,
            };
            if origin == self.me.addr {
                // Local completion without a network round trip.
                let out = self.handle(reply);
                debug_assert!(out.is_empty());
                return vec![];
            }
            return vec![(origin, reply)];
        }
        match self.next_hop(&target) {
            Some(next) => {
                vec![(
                    next.addr,
                    RingMsg::FindOwner {
                        target,
                        origin,
                        req_id,
                        hops: hops + 1,
                    },
                )]
            }
            None => vec![], // not joined yet; drop (caller retries)
        }
    }

    fn owns(&self, key: &Key) -> bool {
        match self.owned_range() {
            Some(r) => r.contains(key),
            // Without a predecessor we only claim our own ID exactly.
            None => *key == self.me.id,
        }
    }

    /// Greedy: farthest known peer that does not pass the target.
    fn next_hop(&self, target: &Key) -> Option<PeerInfo> {
        let to_target = self.me.id.distance_to(target);
        let best = self
            .fingers
            .iter()
            .chain(self.successors.iter())
            .filter(|p| p.addr != self.me.addr)
            .filter(|p| {
                let d = self.me.id.distance_to(&p.id);
                d > Key::MIN && d < to_target
            })
            .max_by_key(|p| self.me.id.distance_to(&p.id))
            .copied();
        best.or_else(|| {
            self.successors
                .first()
                .copied()
                .filter(|p| p.addr != self.me.addr)
        })
    }

    fn handle_join(&mut self, joiner: PeerInfo, hops: u32) -> Vec<(Addr, RingMsg)> {
        if hops > JOIN_MAX_HOPS {
            // While successor lists are transiently inconsistent (mid-heal
            // after a crash), greedy forwarding can cycle between two
            // nodes that each believe the other is closer to the joiner.
            // Drop the message instead of orbiting forever; the joiner
            // re-sends its join on a timer.
            return vec![];
        }
        if joiner.addr == self.me.addr {
            // A retried join that routed back to its own sender; adopting
            // ourselves as predecessor would fabricate a detached
            // whole-ring owner.
            return vec![];
        }
        if self.predecessor.map(|p| p.addr) == Some(joiner.addr) {
            // Re-join after a lost ack: we already adopted this joiner as
            // predecessor, so no other node can own its key (ownership
            // ranges are predecessor-exclusive). Re-ack; the joiner's
            // predecessor pointer is repaired by normal stabilization.
            return vec![(
                joiner.addr,
                RingMsg::JoinAck {
                    successor: self.me,
                    predecessor: None,
                    successors: self.successors.clone(),
                },
            )];
        }
        if self.owns(&joiner.id) {
            // The joiner becomes our predecessor; hand it our old one.
            // (For a singleton ring the old predecessor is ourselves, which
            // is exactly the joiner's correct predecessor.)
            let old_pred = self.predecessor;
            let ack = RingMsg::JoinAck {
                successor: self.me,
                predecessor: old_pred,
                successors: self.successors.clone(),
            };
            self.predecessor = Some(joiner);
            self.learn(joiner);
            self.push_successor(joiner);
            return vec![(joiner.addr, ack)];
        }
        match self.next_hop(&joiner.id) {
            Some(next) => vec![(
                next.addr,
                RingMsg::Join {
                    joiner,
                    hops: hops + 1,
                },
            )],
            None => {
                // Single bootstrap node that hasn't formed a ring view yet.
                let ack = RingMsg::JoinAck {
                    successor: self.me,
                    predecessor: Some(self.me),
                    successors: self.successors.clone(),
                };
                self.predecessor = Some(joiner);
                self.push_successor(joiner);
                vec![(joiner.addr, ack)]
            }
        }
    }

    fn adopt_successor(&mut self, s: PeerInfo) {
        if s.addr == self.me.addr {
            return;
        }
        self.successors.retain(|p| p.addr != s.addr);
        self.successors.insert(0, s);
        self.truncate_successors();
    }

    fn push_successor(&mut self, s: PeerInfo) {
        if s.addr == self.me.addr || self.successors.iter().any(|p| p.addr == s.addr) {
            return;
        }
        // Keep list sorted by clockwise distance from our ID.
        self.successors.push(s);
        let my_id = self.me.id;
        self.successors.sort_by_key(|p| my_id.distance_to(&p.id));
        self.truncate_successors();
    }

    fn truncate_successors(&mut self) {
        let my_id = self.me.id;
        self.successors.sort_by_key(|p| my_id.distance_to(&p.id));
        self.successors.dedup_by_key(|p| p.addr);
        self.successors.truncate(self.cfg.successors);
    }

    fn learn(&mut self, p: PeerInfo) {
        if p.addr == self.me.addr || self.fingers.iter().any(|f| f.addr == p.addr) {
            return;
        }
        self.fingers.push(p);
        if self.fingers.len() > self.cfg.max_fingers {
            self.fingers.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a set of protocol nodes to quiescence in-memory.
    struct Pump {
        nodes: Vec<ProtocolNode>,
        queue: std::collections::VecDeque<(Addr, RingMsg)>,
    }

    impl Pump {
        fn new() -> Self {
            Pump {
                nodes: Vec::new(),
                queue: Default::default(),
            }
        }

        fn bootstrap(&mut self, frac: f64) -> Addr {
            let addr = self.nodes.len();
            self.nodes.push(ProtocolNode::bootstrap(
                Key::from_fraction(frac),
                addr,
                NodeConfig::default(),
            ));
            addr
        }

        fn join(&mut self, frac: f64, seed: Addr) -> Addr {
            let addr = self.nodes.len();
            let (node, msgs) =
                ProtocolNode::join(Key::from_fraction(frac), addr, NodeConfig::default(), seed);
            self.nodes.push(node);
            self.queue.extend(msgs);
            self.drain();
            addr
        }

        fn drain(&mut self) {
            let mut budget = 100_000;
            while let Some((to, msg)) = self.queue.pop_front() {
                let out = self.nodes[to].handle(msg);
                self.queue.extend(out);
                budget -= 1;
                assert!(budget > 0, "message storm");
            }
        }

        fn stabilize(&mut self, rounds: usize) {
            for _ in 0..rounds {
                for i in 0..self.nodes.len() {
                    let out = self.nodes[i].tick();
                    self.queue.extend(out);
                }
                self.drain();
            }
        }

        fn lookup(&mut self, from: Addr, key: Key) -> LookupResult {
            let (req, msgs) = self.nodes[from].start_lookup(key);
            self.queue.extend(msgs);
            self.drain();
            let done = self.nodes[from].take_completed();
            done.into_iter()
                .find(|r| r.req_id == req)
                .expect("lookup must complete")
        }
    }

    fn build_ring(fracs: &[f64]) -> Pump {
        let mut p = Pump::new();
        let seed = p.bootstrap(fracs[0]);
        for &f in &fracs[1..] {
            p.join(f, seed);
            p.stabilize(3);
        }
        p.stabilize(5);
        p
    }

    #[test]
    fn two_nodes_form_a_ring() {
        let p = build_ring(&[0.3, 0.7]);
        let a = &p.nodes[0];
        let b = &p.nodes[1];
        assert_eq!(a.successors()[0].addr, 1);
        assert_eq!(b.successors()[0].addr, 0);
        assert_eq!(a.predecessor().unwrap().addr, 1);
        assert_eq!(b.predecessor().unwrap().addr, 0);
    }

    #[test]
    fn ranges_partition_after_joins() {
        let p = build_ring(&[0.1, 0.35, 0.6, 0.85]);
        // Every node's owned range ends at its own ID and starts at its
        // ring predecessor's ID.
        let mut ends: Vec<f64> = p
            .nodes
            .iter()
            .map(|n| n.owned_range().unwrap().end().to_fraction())
            .collect();
        ends.sort_by(f64::total_cmp);
        assert_eq!(ends.len(), 4);
        // Check each key lands in exactly one claimed range.
        for f in [0.0, 0.2, 0.4, 0.5, 0.7, 0.9, 0.99] {
            let k = Key::from_fraction(f);
            let owners: Vec<_> = p
                .nodes
                .iter()
                .filter(|n| n.owned_range().unwrap().contains(&k))
                .map(|n| n.me().addr)
                .collect();
            assert_eq!(owners.len(), 1, "key at {f} owned by {owners:?}");
        }
    }

    #[test]
    fn lookups_find_correct_owner() {
        let mut p = build_ring(&[0.1, 0.35, 0.6, 0.85]);
        let cases = [
            (0.05, 0.1),
            (0.2, 0.35),
            (0.5, 0.6),
            (0.7, 0.85),
            (0.9, 0.1), // wraps
        ];
        for (kf, owner_frac) in cases {
            let res = p.lookup(2, Key::from_fraction(kf));
            assert_eq!(
                res.owner.id,
                Key::from_fraction(owner_frac),
                "key {kf} should be owned by node at {owner_frac}"
            );
        }
    }

    #[test]
    fn lookup_reports_range_and_successors() {
        let mut p = build_ring(&[0.2, 0.5, 0.8]);
        let res = p.lookup(0, Key::from_fraction(0.45));
        assert!(res.range.contains(&Key::from_fraction(0.45)));
        assert!(!res.successors.is_empty());
    }

    #[test]
    fn self_lookup_completes_locally() {
        let mut p = build_ring(&[0.2, 0.5, 0.8]);
        // Node 1 (at 0.5) looks up a key it owns.
        let res = p.lookup(1, Key::from_fraction(0.4));
        assert_eq!(res.owner.addr, 1);
        assert_eq!(res.hops, 0);
    }

    #[test]
    fn larger_ring_hops_bounded() {
        let fracs: Vec<f64> = (0..24).map(|i| (i as f64 + 0.5) / 24.0).collect();
        let mut p = build_ring(&fracs);
        p.stabilize(8);
        let res = p.lookup(0, Key::from_fraction(0.49));
        assert!(res.hops <= 24, "hops {} should be bounded", res.hops);
        // Owner of 0.49 is its clockwise successor, the node at 12.5/24.
        assert_eq!(res.owner.id, Key::from_fraction(12.5 / 24.0));
    }

    #[test]
    fn rejoin_after_lost_ack_is_reacked() {
        let mut p = build_ring(&[0.2, 0.6]);
        // A node at 0.4 joins through node 0, but its JoinAck is lost:
        // deliver the join to the ring, then drop every message addressed
        // to the joiner (addr 2).
        let (mut c, join_msgs) =
            ProtocolNode::join(Key::from_fraction(0.4), 2, NodeConfig::default(), 0);
        p.queue.extend(join_msgs);
        let mut dropped = 0;
        while let Some((to, msg)) = p.queue.pop_front() {
            if to == 2 {
                dropped += 1;
                continue;
            }
            let out = p.nodes[to].handle(msg);
            p.queue.extend(out);
        }
        assert!(dropped > 0, "the ring should have acked the join");
        assert!(!c.is_joined());
        // The owner (node 1 at 0.6) already adopted the joiner.
        assert_eq!(p.nodes[1].predecessor().unwrap().addr, 2);

        // The joiner retries; this time messages flow. The owner must
        // re-ack even though no node's owned range contains 0.4 anymore.
        p.queue.push_back((
            0,
            RingMsg::Join {
                joiner: c.me(),
                hops: 0,
            },
        ));
        while let Some((to, msg)) = p.queue.pop_front() {
            if to == 2 {
                p.queue.extend(c.handle(msg));
            } else {
                let out = p.nodes[to].handle(msg);
                p.queue.extend(out);
            }
        }
        assert!(c.is_joined(), "retried join must be acked");
        assert_eq!(c.successors()[0].addr, 1);
        // Stabilization then repairs the joiner's predecessor pointer.
        p.nodes.push(c);
        p.stabilize(5);
        assert_eq!(p.nodes[2].predecessor().unwrap().addr, 0);
        assert_eq!(p.nodes[0].successors()[0].addr, 2);
    }

    #[test]
    fn self_join_is_ignored() {
        let mut p = build_ring(&[0.2, 0.6]);
        let me = p.nodes[0].me();
        let out = p.nodes[0].handle(RingMsg::Join {
            joiner: me,
            hops: 0,
        });
        assert!(out.is_empty());
        assert_ne!(p.nodes[0].predecessor().unwrap().addr, me.addr);
    }

    #[test]
    fn forget_removes_pointers() {
        let mut p = build_ring(&[0.2, 0.5, 0.8]);
        p.nodes[0].forget(1);
        assert!(p.nodes[0].successors().iter().all(|s| s.addr != 1));
        // Stabilization repairs the ring around the gap.
        p.stabilize(5);
        assert!(p.nodes[0].is_joined());
    }

    /// Mirrors the live runtime's send semantics: a send to a dead
    /// address fails and makes the *sender* forget it, exactly like
    /// `NodeRuntime::send_all`. Runs `rounds` tick-and-drain rounds.
    fn stabilize_with_dead(p: &mut Pump, dead: &[Addr], rounds: usize) {
        for _ in 0..rounds {
            let mut q: std::collections::VecDeque<(Addr, Addr, RingMsg)> = Default::default();
            for i in 0..p.nodes.len() {
                if dead.contains(&i) {
                    continue;
                }
                for (to, m) in p.nodes[i].tick() {
                    q.push_back((i, to, m));
                }
            }
            let mut budget = 100_000;
            while let Some((from, to, msg)) = q.pop_front() {
                budget -= 1;
                assert!(budget > 0, "message storm");
                if dead.contains(&to) {
                    p.nodes[from].forget(to);
                    continue;
                }
                for (nt, nm) in p.nodes[to].handle(msg) {
                    q.push_back((to, nt, nm));
                }
            }
        }
    }

    #[test]
    fn dead_tail_successors_do_not_wedge_stabilization() {
        // Two adjacent nodes (0.5, 0.6) crash. Their ring predecessor's
        // predecessor (node 0) holds both in the *tail* of its successor
        // list, where a head-only probe would never touch them: its
        // Neighbors replies then re-insert the dead pair at the head of
        // node 1's list every round, one forget per reply can't keep up
        // with two re-added corpses, and node 1 never probes its true
        // successor (node 4) — the ring stays split forever. Full-list
        // probing evicts the tail entries at their source.
        let mut p = build_ring(&[0.1, 0.3, 0.5, 0.6, 0.9]);
        let dead = [2, 3];
        assert!(
            p.nodes[0]
                .successors()
                .iter()
                .any(|s| dead.contains(&s.addr)),
            "wedge precondition: node 0 must advertise a dead tail"
        );
        stabilize_with_dead(&mut p, &dead, 12);
        // The ring heals across the dead arc: 0 -> 1 -> 4 -> 0.
        assert_eq!(p.nodes[1].successors()[0].addr, 4);
        assert_eq!(p.nodes[4].predecessor().unwrap().addr, 1);
        assert_eq!(p.nodes[4].successors()[0].addr, 0);
        assert_eq!(p.nodes[0].predecessor().unwrap().addr, 4);
        // And no live node still advertises a corpse anywhere.
        for (i, n) in p.nodes.iter().enumerate() {
            if dead.contains(&i) {
                continue;
            }
            assert!(
                n.successors().iter().all(|s| !dead.contains(&s.addr)),
                "node {i} still lists a dead successor: {:?}",
                n.successors().iter().map(|s| s.addr).collect::<Vec<_>>()
            );
        }
    }
}
