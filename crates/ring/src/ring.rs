//! Authoritative ring membership and ownership.
//!
//! [`Ring`] is the global view of node positions that the paper's
//! simulators maintain (they model "all facets of D2 except DHT routing",
//! Section 8.1). Nodes are identified by a stable [`NodeIdx`] handle that
//! survives ID changes made by the load balancer, and by their current ring
//! position ([`Key`]).

use d2_types::{Key, KeyRange};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A stable handle for a node, independent of its (mutable) ring position.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeIdx(pub usize);

impl fmt::Debug for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Global ring membership: a bidirectional map between ring positions and
/// node handles.
///
/// Invariants:
/// - at most one node per ring position (positions are 512-bit, collisions
///   are rejected by [`Ring::add_node_at`] returning `None`);
/// - `owner_of(k)` is the node whose ID is the clockwise successor of `k`
///   (i.e. the smallest ID ≥ `k`, wrapping).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Ring {
    by_key: BTreeMap<Key, NodeIdx>,
    ids: Vec<Option<Key>>,
}

impl Ring {
    /// Creates an empty ring.
    pub fn new() -> Self {
        Ring::default()
    }

    /// Number of nodes currently in the ring.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Adds a new node at `id`, allocating a fresh handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already occupied (use [`Ring::add_node_at`] to
    /// handle collisions).
    pub fn add_node(&mut self, id: Key) -> NodeIdx {
        let idx = NodeIdx(self.ids.len());
        self.ids.push(None);
        assert!(self.place(idx, id), "ring position {id} already occupied");
        idx
    }

    /// Pre-allocates a handle without placing the node in the ring
    /// (a node that exists but is currently offline / not joined).
    pub fn add_offline_node(&mut self) -> NodeIdx {
        let idx = NodeIdx(self.ids.len());
        self.ids.push(None);
        idx
    }

    /// Places node `idx` at position `id`. Returns `false` if the position
    /// is occupied or the node is already placed.
    pub fn add_node_at(&mut self, idx: NodeIdx, id: Key) -> bool {
        self.place(idx, id)
    }

    fn place(&mut self, idx: NodeIdx, id: Key) -> bool {
        if self.ids[idx.0].is_some() || self.by_key.contains_key(&id) {
            return false;
        }
        self.by_key.insert(id, idx);
        self.ids[idx.0] = Some(id);
        true
    }

    /// Removes node `idx` from the ring (leave or failure). Its handle
    /// remains valid for a later re-join. Returns its old position.
    pub fn remove_node(&mut self, idx: NodeIdx) -> Option<Key> {
        let id = self.ids[idx.0].take()?;
        self.by_key.remove(&id);
        Some(id)
    }

    /// Atomically moves node `idx` to `new_id` (the load balancer's
    /// leave-and-rejoin). Returns `false` (and leaves the ring unchanged)
    /// if `new_id` is occupied by another node.
    pub fn move_node(&mut self, idx: NodeIdx, new_id: Key) -> bool {
        let Some(old) = self.ids[idx.0] else {
            return false;
        };
        if old == new_id {
            return true;
        }
        if self.by_key.contains_key(&new_id) {
            return false;
        }
        self.by_key.remove(&old);
        self.by_key.insert(new_id, idx);
        self.ids[idx.0] = Some(new_id);
        true
    }

    /// The current ring position of `idx`, if it is in the ring.
    pub fn id_of(&self, idx: NodeIdx) -> Option<Key> {
        self.ids.get(idx.0).copied().flatten()
    }

    /// Whether node `idx` is currently in the ring.
    pub fn contains(&self, idx: NodeIdx) -> bool {
        self.id_of(idx).is_some()
    }

    /// Total number of handles ever allocated (alive or not).
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// The node owning `key`: the one whose ID is the smallest ≥ `key`
    /// (wrapping around the top of the key space).
    pub fn owner_of(&self, key: &Key) -> Option<NodeIdx> {
        self.by_key
            .range(key..)
            .next()
            .or_else(|| self.by_key.iter().next())
            .map(|(_, &idx)| idx)
    }

    /// The `r` distinct nodes succeeding `key` (the replica group of a
    /// block with that key). Returns fewer when the ring is smaller than
    /// `r`.
    pub fn replica_group(&self, key: &Key, r: usize) -> Vec<NodeIdx> {
        let mut out = Vec::with_capacity(self.len().min(r));
        self.replica_group_into(key, r, &mut out);
        out
    }

    /// [`Ring::replica_group`] into a caller-provided buffer (cleared
    /// first), so hot loops can reuse one allocation across calls.
    pub fn replica_group_into(&self, key: &Key, r: usize, out: &mut Vec<NodeIdx>) {
        out.clear();
        let n = self.len().min(r);
        for (_, &idx) in self.by_key.range(key..).chain(self.by_key.iter()) {
            if out.len() == n {
                break;
            }
            if !out.contains(&idx) {
                out.push(idx);
            }
        }
    }

    /// The first node in ring order (smallest ID), without materializing
    /// the whole node list as [`Ring::nodes`] would.
    pub fn first_node(&self) -> Option<NodeIdx> {
        self.by_key.values().next().copied()
    }

    /// The clockwise successor node of `idx` (the next ID after its own).
    pub fn successor(&self, idx: NodeIdx) -> Option<NodeIdx> {
        let id = self.id_of(idx)?;
        let next = id.successor_point();
        self.owner_of(&next)
    }

    /// The counter-clockwise predecessor node of `idx`.
    pub fn predecessor(&self, idx: NodeIdx) -> Option<NodeIdx> {
        let id = self.id_of(idx)?;
        self.by_key
            .range(..id)
            .next_back()
            .or_else(|| self.by_key.iter().next_back())
            .map(|(_, &i)| i)
    }

    /// The ownership range of node `idx`: `(predecessor_id, own_id]`.
    /// For a single-node ring this is the full ring.
    pub fn range_of(&self, idx: NodeIdx) -> Option<KeyRange> {
        let id = self.id_of(idx)?;
        let pred = self.predecessor(idx)?;
        let pred_id = self.id_of(pred)?;
        if pred == idx {
            return Some(KeyRange::full());
        }
        Some(KeyRange::new(pred_id, id))
    }

    /// Iterates `(position, node)` pairs in ring order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &NodeIdx)> {
        self.by_key.iter()
    }

    /// All node handles currently in the ring, in ring order.
    pub fn nodes(&self) -> Vec<NodeIdx> {
        self.by_key.values().copied().collect()
    }

    /// A uniformly random node currently in the ring.
    ///
    /// Mercury approximates uniform node sampling with random walks over
    /// its small-world links; the oracle draw here is the converged
    /// behaviour of that sampler.
    pub fn random_node<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeIdx> {
        if self.by_key.is_empty() {
            return None;
        }
        let n = rng.random_range(0..self.by_key.len());
        self.by_key.values().nth(n).copied()
    }

    /// Rank of node `idx` in ring order (0-based), used for building
    /// rank-distance long links.
    pub fn rank_of(&self, idx: NodeIdx) -> Option<usize> {
        let id = self.id_of(idx)?;
        Some(self.by_key.range(..=id).count() - 1)
    }

    /// The node at rank `r mod len` in ring order.
    pub fn node_at_rank(&self, r: usize) -> Option<NodeIdx> {
        if self.by_key.is_empty() {
            return None;
        }
        self.by_key.values().nth(r % self.by_key.len()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ring_with(fractions: &[f64]) -> (Ring, Vec<NodeIdx>) {
        let mut ring = Ring::new();
        let idxs = fractions
            .iter()
            .map(|&f| ring.add_node(Key::from_fraction(f)))
            .collect();
        (ring, idxs)
    }

    #[test]
    fn owner_is_clockwise_successor() {
        let (ring, idx) = ring_with(&[0.2, 0.5, 0.8]);
        assert_eq!(ring.owner_of(&Key::from_fraction(0.1)), Some(idx[0]));
        assert_eq!(ring.owner_of(&Key::from_fraction(0.3)), Some(idx[1]));
        assert_eq!(ring.owner_of(&Key::from_fraction(0.6)), Some(idx[2]));
        // Wraps past the top back to the first node.
        assert_eq!(ring.owner_of(&Key::from_fraction(0.9)), Some(idx[0]));
    }

    #[test]
    fn owner_at_exact_position() {
        let (ring, idx) = ring_with(&[0.2, 0.5]);
        let at = Key::from_fraction(0.5);
        assert_eq!(ring.owner_of(&at), Some(idx[1]));
    }

    #[test]
    fn replica_group_distinct_and_ordered() {
        let (ring, idx) = ring_with(&[0.1, 0.3, 0.5, 0.7]);
        let g = ring.replica_group(&Key::from_fraction(0.4), 3);
        assert_eq!(g, vec![idx[2], idx[3], idx[0]]);
    }

    #[test]
    fn replica_group_into_matches_and_reuses_buffer() {
        let (ring, _) = ring_with(&[0.1, 0.3, 0.5, 0.7]);
        let mut buf = Vec::new();
        for f in [0.05, 0.4, 0.72, 0.99] {
            let key = Key::from_fraction(f);
            ring.replica_group_into(&key, 3, &mut buf);
            assert_eq!(buf, ring.replica_group(&key, 3));
        }
        assert_eq!(ring.first_node(), Some(ring.nodes()[0]));
    }

    #[test]
    fn replica_group_smaller_ring() {
        let (ring, idx) = ring_with(&[0.5]);
        assert_eq!(
            ring.replica_group(&Key::from_fraction(0.9), 3),
            vec![idx[0]]
        );
    }

    #[test]
    fn successor_predecessor_cycle() {
        let (ring, idx) = ring_with(&[0.1, 0.4, 0.9]);
        assert_eq!(ring.successor(idx[0]), Some(idx[1]));
        assert_eq!(ring.successor(idx[2]), Some(idx[0]));
        assert_eq!(ring.predecessor(idx[0]), Some(idx[2]));
        assert_eq!(ring.predecessor(idx[1]), Some(idx[0]));
    }

    #[test]
    fn single_node_owns_everything() {
        let (ring, idx) = ring_with(&[0.5]);
        assert_eq!(ring.successor(idx[0]), Some(idx[0]));
        assert_eq!(ring.predecessor(idx[0]), Some(idx[0]));
        assert!(ring.range_of(idx[0]).unwrap().is_full());
        assert!(ring
            .range_of(idx[0])
            .unwrap()
            .contains(&Key::from_fraction(0.123)));
    }

    #[test]
    fn ranges_partition_the_ring() {
        let (ring, _) = ring_with(&[0.15, 0.35, 0.6, 0.85]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let k = Key::random(&mut rng);
            let owner = ring.owner_of(&k).unwrap();
            let covering: Vec<_> = ring
                .nodes()
                .into_iter()
                .filter(|&n| ring.range_of(n).unwrap().contains(&k))
                .collect();
            assert_eq!(
                covering,
                vec![owner],
                "key {k} must be covered exactly once"
            );
        }
    }

    #[test]
    fn remove_and_rejoin() {
        let (mut ring, idx) = ring_with(&[0.2, 0.6]);
        let old = ring.remove_node(idx[0]).unwrap();
        assert_eq!(old, Key::from_fraction(0.2));
        assert_eq!(ring.owner_of(&Key::from_fraction(0.1)), Some(idx[1]));
        assert!(ring.add_node_at(idx[0], Key::from_fraction(0.9)));
        assert_eq!(ring.owner_of(&Key::from_fraction(0.7)), Some(idx[0]));
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn move_node_shifts_ownership() {
        let (mut ring, idx) = ring_with(&[0.2, 0.6]);
        assert!(ring.move_node(idx[1], Key::from_fraction(0.4)));
        // Keys in (0.4, 1.0] wrap to node 0 at 0.2; 0.5 now owned by... the
        // successor of 0.5 is node at... ids are 0.2 and 0.4, so owner of
        // 0.5 wraps to 0.2.
        assert_eq!(ring.owner_of(&Key::from_fraction(0.5)), Some(idx[0]));
        assert_eq!(ring.owner_of(&Key::from_fraction(0.3)), Some(idx[1]));
    }

    #[test]
    fn move_to_occupied_position_fails() {
        let (mut ring, idx) = ring_with(&[0.2, 0.6]);
        assert!(!ring.move_node(idx[0], Key::from_fraction(0.6)));
        assert_eq!(ring.id_of(idx[0]), Some(Key::from_fraction(0.2)));
    }

    #[test]
    fn rank_round_trip() {
        let (ring, idx) = ring_with(&[0.7, 0.1, 0.4]);
        // Ring order: 0.1 (idx1), 0.4 (idx2), 0.7 (idx0).
        assert_eq!(ring.rank_of(idx[1]), Some(0));
        assert_eq!(ring.rank_of(idx[2]), Some(1));
        assert_eq!(ring.rank_of(idx[0]), Some(2));
        assert_eq!(ring.node_at_rank(0), Some(idx[1]));
        assert_eq!(ring.node_at_rank(5), Some(idx[0])); // 5 mod 3 = 2 -> node at 0.7
    }

    #[test]
    fn random_node_uniformish() {
        let (ring, idx) = ring_with(&[0.1, 0.2, 0.3, 0.4]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let n = ring.random_node(&mut rng).unwrap();
            counts[idx.iter().position(|&i| i == n).unwrap()] += 1;
        }
        for c in counts {
            assert!(c > 50, "each node should be sampled: {counts:?}");
        }
    }

    #[test]
    fn offline_node_not_in_ring() {
        let mut ring = Ring::new();
        let a = ring.add_offline_node();
        assert!(!ring.contains(a));
        assert!(ring.add_node_at(a, Key::from_fraction(0.3)));
        assert!(ring.contains(a));
    }
}
