//! Per-node routing tables and greedy recursive lookup.
//!
//! Mercury maintains a small-world overlay whose long links follow a
//! harmonic *rank* distribution, giving O(log n) routing hops even when
//! node IDs are not uniformly distributed (as in D2, where the load
//! balancer packs nodes where the data is). We reproduce the converged
//! form of those tables: each node links to the nodes `2^i` ranks ahead of
//! it in ring order, plus a short successor list. Greedy clockwise routing
//! over these links takes at most `log2(n)` forwarding hops.
//!
//! The [`Router`] owns one table per node and provides hop- and
//! message-accounted lookups for the Section 9.2 experiments.

use crate::ring::{NodeIdx, Ring};
use d2_obs::{SharedSink, TraceEvent};
use d2_types::Key;
use serde::{Deserialize, Serialize};

/// Routing state of a single node: its successor list and long links.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoutingTable {
    /// The node this table belongs to.
    pub own: NodeIdx,
    /// Ring position when the table was built.
    pub own_id: Key,
    /// Links in ascending clockwise distance: successors first, then long
    /// links at rank distances 2, 4, 8, … (deduplicated).
    pub links: Vec<(Key, NodeIdx)>,
}

impl RoutingTable {
    /// Builds the converged Mercury-style table for `node` from the
    /// current ring: `succ_count` immediate successors plus long links at
    /// doubling rank distances.
    pub fn build(ring: &Ring, node: NodeIdx, succ_count: usize) -> Option<RoutingTable> {
        let own_id = ring.id_of(node)?;
        let rank = ring.rank_of(node)?;
        let n = ring.len();
        let mut links: Vec<(Key, NodeIdx)> = Vec::new();
        let mut push = |r: usize| {
            if let Some(peer) = ring.node_at_rank(r) {
                if peer != node {
                    if let Some(id) = ring.id_of(peer) {
                        if !links.iter().any(|(_, p)| *p == peer) {
                            links.push((id, peer));
                        }
                    }
                }
            }
        };
        for s in 1..=succ_count.min(n.saturating_sub(1)) {
            push(rank + s);
        }
        let mut d = 2usize;
        while d < n {
            push(rank + d);
            d *= 2;
        }
        Some(
            RoutingTable {
                own: node,
                own_id,
                links,
            }
            .normalize(),
        )
    }

    fn normalize(mut self) -> Self {
        // Sort links by clockwise distance from own_id so greedy scans are
        // a simple reverse pass.
        let own = self.own_id;
        self.links.sort_by_key(|(id, _)| own.distance_to(id));
        self
    }

    /// The link that most closely *precedes* `target` clockwise from this
    /// node, i.e. the farthest link we can jump to without passing the
    /// target. `None` if no link helps (the successor owns the target or
    /// the table is empty).
    pub fn closest_preceding(&self, target: &Key) -> Option<(Key, NodeIdx)> {
        let to_target = self.own_id.distance_to(target);
        self.links
            .iter()
            .rev()
            .find(|(id, _)| {
                let d = self.own_id.distance_to(id);
                d < to_target && d > Key::MIN
            })
            .copied()
    }
}

/// Statistics from one routed lookup.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupStats {
    /// Node that owns the looked-up key.
    pub owner: NodeIdx,
    /// Number of forwarding hops (0 when the requester owns the key).
    pub hops: u32,
    /// Messages consumed: one per forwarding hop plus one reply to the
    /// requester (0 when no network traffic was needed).
    pub messages: u32,
    /// The nodes visited, starting with the requester and ending with the
    /// owner (length `hops + 1`); used to charge per-hop latencies.
    pub path: Vec<NodeIdx>,
}

/// A set of routing tables for every node in a ring, with recursive greedy
/// lookup.
///
/// # Examples
///
/// ```
/// use d2_ring::{Ring, routing::Router};
/// use d2_types::Key;
///
/// let mut ring = Ring::new();
/// for i in 0..64 {
///     ring.add_node(Key::from_fraction(i as f64 / 64.0));
/// }
/// let router = Router::build(&ring, 4);
/// let from = ring.node_at_rank(0).unwrap();
/// let stats = router.lookup(&ring, from, &Key::from_fraction(0.77)).unwrap();
/// assert!(stats.hops <= 6); // log2(64)
/// ```
#[derive(Clone, Debug, Default)]
pub struct Router {
    tables: Vec<Option<RoutingTable>>,
    succ_count: usize,
}

impl Router {
    /// Builds tables for every node currently in `ring`.
    pub fn build(ring: &Ring, succ_count: usize) -> Router {
        let mut tables = vec![None; ring.capacity()];
        for node in ring.nodes() {
            tables[node.0] = RoutingTable::build(ring, node, succ_count);
        }
        Router { tables, succ_count }
    }

    /// Rebuilds the table of a single node (after it moved or joined).
    pub fn rebuild_node(&mut self, ring: &Ring, node: NodeIdx) {
        if self.tables.len() < ring.capacity() {
            self.tables.resize(ring.capacity(), None);
        }
        self.tables[node.0] = RoutingTable::build(ring, node, self.succ_count);
    }

    /// Drops the table of a departed node.
    pub fn remove_node(&mut self, node: NodeIdx) {
        if let Some(t) = self.tables.get_mut(node.0) {
            *t = None;
        }
    }

    /// The routing table of `node`, if built.
    pub fn table(&self, node: NodeIdx) -> Option<&RoutingTable> {
        self.tables.get(node.0).and_then(|t| t.as_ref())
    }

    /// Successor-list length the tables were built with.
    pub fn succ_count(&self) -> usize {
        self.succ_count
    }

    /// Removes the link `owner` → `dead` from `owner`'s table after a
    /// timeout (negative feedback: the peer is presumed crashed). A
    /// node never discards its *last* link — Chord's "keep your last
    /// known successor" rule, without which an unlucky burst of message
    /// drops could disconnect a perfectly healthy node. Returns whether
    /// a link was removed.
    pub fn evict_link(&mut self, owner: NodeIdx, dead: NodeIdx) -> bool {
        match self.tables.get_mut(owner.0).and_then(|t| t.as_mut()) {
            Some(t) if t.links.len() > 1 => {
                let before = t.links.len();
                t.links.retain(|(_, p)| *p != dead);
                t.links.len() < before
            }
            _ => false,
        }
    }

    /// Replaces (or clears) the stored table of `node`, growing the slot
    /// vector as needed. Internal hook for the churn-stabilization code.
    pub(crate) fn set_table(&mut self, node: NodeIdx, table: Option<RoutingTable>) {
        if self.tables.len() <= node.0 {
            self.tables.resize(node.0 + 1, None);
        }
        self.tables[node.0] = table;
    }

    /// Recursively routes a lookup for `key` starting at `from`, returning
    /// hop/message counts. Stale long links (nodes that have since moved or
    /// left) are skipped; progress is guaranteed through the live ring's
    /// successor pointers, which stabilize much faster than long links in
    /// practice (and instantly for voluntary load-balance moves — paper
    /// footnote 4).
    pub fn lookup(&self, ring: &Ring, from: NodeIdx, key: &Key) -> Option<LookupStats> {
        let mut path = Vec::new();
        let (owner, hops, messages) = self.lookup_into(ring, from, key, &mut path)?;
        Some(LookupStats {
            owner,
            hops,
            messages,
            path,
        })
    }

    /// The allocation-free core of [`Router::lookup`]: the hop path is
    /// written into `path` (cleared first), so per-fetch callers can
    /// reuse one buffer for every lookup. Returns
    /// `(owner, hops, messages)`.
    pub fn lookup_into(
        &self,
        ring: &Ring,
        from: NodeIdx,
        key: &Key,
        path: &mut Vec<NodeIdx>,
    ) -> Option<(NodeIdx, u32, u32)> {
        let owner = ring.owner_of(key)?;
        let mut cur = from;
        let mut hops = 0u32;
        path.clear();
        path.push(from);
        // Hard cap to guarantee termination even with absurdly stale state.
        let cap = 4 * (usize::BITS - ring.len().leading_zeros()) + 16;
        while cur != owner {
            let next = self
                .table(cur)
                .and_then(|t| {
                    // Only use links that are still current.
                    t.closest_preceding(key)
                        .filter(|(id, peer)| ring.id_of(*peer) == Some(*id))
                })
                .map(|(_, peer)| peer)
                .or_else(|| ring.successor(cur))?;
            if next == cur {
                break;
            }
            cur = next;
            hops += 1;
            path.push(cur);
            if hops > cap {
                // Fall back to walking successors; count remaining hops.
                while cur != owner {
                    cur = ring.successor(cur)?;
                    hops += 1;
                    path.push(cur);
                }
                break;
            }
        }
        let messages = if hops == 0 { 0 } else { hops + 1 };
        Some((owner, hops, messages))
    }

    /// [`Router::lookup`] plus a [`TraceEvent::Route`] record in `sink`
    /// carrying the full hop path. `now_us` is the caller's virtual clock
    /// and `user` the requesting user (0 when not user-attributed). With a
    /// null sink this is exactly `lookup` — the event is never built.
    pub fn lookup_traced(
        &self,
        ring: &Ring,
        from: NodeIdx,
        key: &Key,
        now_us: u64,
        user: u32,
        sink: &SharedSink,
    ) -> Option<LookupStats> {
        let stats = self.lookup(ring, from, key)?;
        sink.record_with(|| TraceEvent::Route {
            t_us: now_us,
            user,
            key: key.to_u64_lossy(),
            from: from.0,
            owner: stats.owner.0,
            hops: stats.hops,
            messages: stats.messages,
            path: stats.path.iter().map(|n| n.0).collect(),
        });
        Some(stats)
    }
}

impl Router {
    /// Mercury-style random node sampling by random walk: starting from
    /// `from`, take `steps` hops over routing-table links chosen uniformly
    /// at random. Mercury uses such walks to estimate load distributions
    /// and to pick balance probe targets without global knowledge; with
    /// small-world tables a short walk lands nearly uniformly.
    ///
    /// `Ring::random_node` is the converged oracle version the simulators
    /// use; this is the real protocol mechanism, kept for fidelity and
    /// validated for near-uniformity in tests.
    pub fn random_walk<R: rand::Rng + ?Sized>(
        &self,
        ring: &Ring,
        from: NodeIdx,
        steps: usize,
        rng: &mut R,
    ) -> NodeIdx {
        let mut cur = from;
        for _ in 0..steps {
            let links: Vec<NodeIdx> = self
                .table(cur)
                .map(|t| {
                    t.links
                        .iter()
                        .filter(|(id, peer)| ring.id_of(*peer) == Some(*id))
                        .map(|(_, p)| *p)
                        .collect()
                })
                .unwrap_or_default();
            if links.is_empty() {
                // Fall back to the live successor pointer.
                match ring.successor(cur) {
                    Some(s) => cur = s,
                    None => return cur,
                }
                continue;
            }
            cur = links[rng.random_range(0..links.len())];
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn uniform_ring(n: usize) -> Ring {
        let mut ring = Ring::new();
        for i in 0..n {
            ring.add_node(Key::from_fraction(i as f64 / n as f64));
        }
        ring
    }

    #[test]
    fn lookup_reaches_owner() {
        let ring = uniform_ring(100);
        let router = Router::build(&ring, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let from = ring.random_node(&mut rng).unwrap();
            let key = Key::random(&mut rng);
            let stats = router.lookup(&ring, from, &key).unwrap();
            assert_eq!(stats.owner, ring.owner_of(&key).unwrap());
        }
    }

    #[test]
    fn hops_logarithmic() {
        for n in [64usize, 256, 1024] {
            let ring = uniform_ring(n);
            let router = Router::build(&ring, 4);
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let log2n = (n as f64).log2();
            let mut total = 0u64;
            let trials = 300;
            for _ in 0..trials {
                let from = ring.random_node(&mut rng).unwrap();
                let key = Key::random(&mut rng);
                let stats = router.lookup(&ring, from, &key).unwrap();
                assert!(
                    (stats.hops as f64) <= log2n + 2.0,
                    "n={n} hops={} log2={log2n}",
                    stats.hops
                );
                total += stats.hops as u64;
            }
            let mean = total as f64 / trials as f64;
            assert!(
                mean <= log2n,
                "mean hops {mean} should be <= log2(n)={log2n}"
            );
            assert!(
                mean >= 0.25 * log2n,
                "mean hops {mean} suspiciously low for n={n}"
            );
        }
    }

    #[test]
    fn lookup_into_matches_lookup_with_reused_buffer() {
        let ring = uniform_ring(64);
        let router = Router::build(&ring, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        let mut buf = Vec::new();
        for _ in 0..50 {
            let from = ring.random_node(&mut rng).unwrap();
            let key = Key::random(&mut rng);
            let plain = router.lookup(&ring, from, &key).unwrap();
            let (owner, hops, messages) = router.lookup_into(&ring, from, &key, &mut buf).unwrap();
            assert_eq!(owner, plain.owner);
            assert_eq!(hops, plain.hops);
            assert_eq!(messages, plain.messages);
            assert_eq!(buf, plain.path);
        }
    }

    #[test]
    fn self_lookup_is_free() {
        let ring = uniform_ring(16);
        let router = Router::build(&ring, 2);
        let node = ring.node_at_rank(3).unwrap();
        let own_id = ring.id_of(node).unwrap();
        let stats = router.lookup(&ring, node, &own_id).unwrap();
        assert_eq!(stats.hops, 0);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn routing_works_on_skewed_ring() {
        // Nodes packed into 1% of the key space plus a few stragglers —
        // the kind of distribution D2's balancer produces.
        let mut ring = Ring::new();
        for i in 0..200 {
            ring.add_node(Key::from_fraction(0.40 + 0.01 * i as f64 / 200.0));
        }
        ring.add_node(Key::from_fraction(0.9));
        ring.add_node(Key::from_fraction(0.1));
        let router = Router::build(&ring, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let from = ring.random_node(&mut rng).unwrap();
            let key = Key::random(&mut rng);
            let stats = router.lookup(&ring, from, &key).unwrap();
            assert_eq!(stats.owner, ring.owner_of(&key).unwrap());
            assert!(
                stats.hops <= 12,
                "hops={} too high for 202 nodes",
                stats.hops
            );
        }
    }

    #[test]
    fn stale_links_fall_back_to_successors() {
        let mut ring = uniform_ring(32);
        let router = Router::build(&ring, 4);
        // Move a quarter of the nodes without rebuilding the router.
        for i in 0..8 {
            let node = ring.node_at_rank(i * 4).unwrap();
            let id = ring.id_of(node).unwrap();
            ring.move_node(node, id.wrapping_add(&Key::from_u64_ordered(1 << 48)));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let from = ring.random_node(&mut rng).unwrap();
            let key = Key::random(&mut rng);
            let stats = router.lookup(&ring, from, &key).unwrap();
            assert_eq!(stats.owner, ring.owner_of(&key).unwrap());
        }
    }

    #[test]
    fn two_node_ring_routes() {
        let ring = uniform_ring(2);
        let router = Router::build(&ring, 1);
        let a = ring.node_at_rank(0).unwrap();
        let stats = router.lookup(&ring, a, &Key::from_fraction(0.75)).unwrap();
        assert!(stats.hops <= 1);
    }

    #[test]
    fn random_walk_is_near_uniform() {
        let ring = uniform_ring(32);
        let router = Router::build(&ring, 4);
        let from = ring.node_at_rank(0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut counts = [0u32; 32];
        let trials = 6400;
        for _ in 0..trials {
            let n = router.random_walk(&ring, from, 8, &mut rng);
            counts[ring.rank_of(n).unwrap()] += 1;
        }
        // Every node reachable; no node hoards more than 4x its fair share.
        let fair = trials / 32;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(c > 0, "rank {rank} never sampled");
            assert!(c < 4 * fair, "rank {rank} oversampled: {c} vs fair {fair}");
        }
    }

    #[test]
    fn random_walk_survives_stale_tables() {
        let mut ring = uniform_ring(16);
        let router = Router::build(&ring, 3);
        // Remove a quarter of the nodes without rebuilding.
        for i in 0..4 {
            let n = ring.node_at_rank(i * 4).unwrap();
            ring.remove_node(n);
        }
        let from = ring.nodes()[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for _ in 0..100 {
            let n = router.random_walk(&ring, from, 6, &mut rng);
            assert!(ring.contains(n), "walk must end on a live node");
        }
    }

    #[test]
    fn traced_lookup_matches_plain_and_records_path() {
        let ring = uniform_ring(64);
        let router = Router::build(&ring, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let sink = SharedSink::memory(0);
        for _ in 0..20 {
            let from = ring.random_node(&mut rng).unwrap();
            let key = Key::random(&mut rng);
            let plain = router.lookup(&ring, from, &key).unwrap();
            let traced = router
                .lookup_traced(&ring, from, &key, 123, 7, &sink)
                .unwrap();
            assert_eq!(plain, traced);
        }
        let events = sink.drain();
        assert_eq!(events.len(), 20);
        match &events[0] {
            TraceEvent::Route {
                t_us,
                user,
                hops,
                path,
                ..
            } => {
                assert_eq!(*t_us, 123);
                assert_eq!(*user, 7);
                assert_eq!(path.len() as u32, hops + 1);
            }
            other => panic!("expected Route, got {other:?}"),
        }
        // A null sink records nothing and still routes.
        let null = SharedSink::null();
        let from = ring.random_node(&mut rng).unwrap();
        let key = Key::random(&mut rng);
        assert!(router
            .lookup_traced(&ring, from, &key, 0, 0, &null)
            .is_some());
        assert!(null.drain().is_empty());
    }

    #[test]
    fn messages_are_hops_plus_reply() {
        let ring = uniform_ring(64);
        let router = Router::build(&ring, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let from = ring.random_node(&mut rng).unwrap();
            let key = Key::random(&mut rng);
            let s = router.lookup(&ring, from, &key).unwrap();
            if s.hops == 0 {
                assert_eq!(s.messages, 0);
            } else {
                assert_eq!(s.messages, s.hops + 1);
            }
        }
    }
}
