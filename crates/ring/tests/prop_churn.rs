//! Property test: ring invariants survive arbitrary interleavings of
//! join / graceful-leave / crash / rejoin, once a stabilization round
//! runs.
//!
//! After any op sequence followed by `Router::stabilize_round`:
//! 1. **Successor-list consistency** (Zave's key invariant): every live
//!    node's first links are exactly the live ring's successors, in
//!    ring order;
//! 2. **No stale links**: no live node's table points at a crashed or
//!    departed node, and every link's cached ID matches the peer's
//!    current ring position;
//! 3. **Routability**: every sampled key is resolvable from every
//!    sampled origin via the churn-hardened lookup under a fault-free
//!    oracle — terminating at the true live owner with zero retries.

use d2_ring::churn::NoFaults;
use d2_ring::routing::Router;
use d2_ring::{LookupOutcome, NodeIdx, RetryPolicy, Ring};
use d2_types::Key;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// A brand-new node joins at a key derived from the payload.
    Join(u16),
    /// A live node (picked by rank) departs gracefully: it leaves the
    /// ring and announces it, so its own table is dropped.
    Leave(u8),
    /// A live node crashes: it leaves the ring but its table freezes in
    /// place and everyone else's links to it dangle.
    Crash(u8),
    /// A crashed node (picked among the crashed) rejoins at its old
    /// position and rebuilds its own table; other tables stay stale.
    Rejoin(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => any::<u16>().prop_map(Op::Join),
        1 => any::<u8>().prop_map(Op::Leave),
        2 => any::<u8>().prop_map(Op::Crash),
        2 => any::<u8>().prop_map(Op::Rejoin),
    ]
}

/// A key unique to the payload that cannot collide with the seed nodes'
/// positions (seeds sit at i/8 + 1/16; joiners at finer offsets).
fn join_id(k: u16) -> Key {
    Key::from_fraction((k as f64 + 0.25) / (u16::MAX as f64 + 1.0))
}

fn nth_live(live: &Ring, i: u8) -> Option<NodeIdx> {
    let nodes = live.nodes();
    if nodes.is_empty() {
        None
    } else {
        Some(nodes[i as usize % nodes.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stabilization_restores_ring_invariants(ops in prop::collection::vec(arb_op(), 1..48)) {
        const SUCC: usize = 3;
        let mut live = Ring::new();
        for i in 0..8 {
            live.add_node(Key::from_fraction((i as f64 + 0.5) / 8.0));
        }
        let mut router = Router::build(&live, SUCC);
        // Crashed nodes remembered by handle → old position.
        let mut crashed: Vec<(NodeIdx, Key)> = Vec::new();

        for op in ops {
            match op {
                Op::Join(k) => {
                    let id = join_id(k);
                    // Skip exact-position collisions (duplicate payloads,
                    // or a crashed node's reserved spot).
                    let occupied = live.owner_of(&id).and_then(|o| live.id_of(o)) == Some(id)
                        || crashed.iter().any(|&(_, c)| c == id);
                    if !occupied {
                        let n = live.add_node(id);
                        router.rebuild_node(&live, n);
                    }
                }
                Op::Leave(i) => {
                    if live.len() > 1 {
                        if let Some(n) = nth_live(&live, i) {
                            live.remove_node(n);
                            router.remove_node(n);
                        }
                    }
                }
                Op::Crash(i) => {
                    if live.len() > 1 {
                        if let Some(n) = nth_live(&live, i) {
                            let id = live.id_of(n).unwrap();
                            live.remove_node(n);
                            crashed.push((n, id));
                            // Table stays frozen: links to n now dangle.
                        }
                    }
                }
                Op::Rejoin(i) => {
                    if !crashed.is_empty() {
                        let (n, id) = crashed.remove(i as usize % crashed.len());
                        if live.add_node_at(n, id) {
                            router.rebuild_node(&live, n);
                        }
                    }
                }
            }
        }

        router.stabilize_round(&live);

        // (1) + (2): successor lists match the live ring; no stale links.
        let nodes = live.nodes();
        for &node in &nodes {
            let t = router.table(node).expect("every live node has a table");
            let want = (live.len() - 1).min(SUCC);
            let mut succ = live.successor(node).unwrap();
            for rank in 0..want {
                prop_assert_eq!(
                    t.links.get(rank).map(|&(_, p)| p),
                    Some(succ),
                    "node {:?}: successor link {} wrong", node, rank
                );
                succ = live.successor(succ).unwrap();
            }
            for &(id, peer) in &t.links {
                prop_assert_eq!(
                    live.id_of(peer),
                    Some(id),
                    "node {:?}: link to {:?} is stale", node, peer
                );
            }
        }

        // (3): every live key routes to its true owner from any origin,
        // with no retries, under a fault-free oracle.
        let policy = RetryPolicy::default();
        let keys: Vec<Key> = (0..12).map(|i| Key::from_fraction((i as f64 + 0.37) / 12.0)).collect();
        for (oi, &origin) in nodes.iter().enumerate().step_by(nodes.len().div_ceil(4).max(1)) {
            let _ = oi;
            for key in &keys {
                let s = router.lookup_churn(&live, origin, key, &policy, &mut NoFaults, 0);
                prop_assert_eq!(s.outcome, LookupOutcome::Success,
                    "key {} unroutable from {:?}", key, origin);
                prop_assert_eq!(s.owner, live.owner_of(key));
                prop_assert_eq!(s.retries, 0);
                prop_assert_eq!(s.timeouts, 0);
            }
        }
    }
}
