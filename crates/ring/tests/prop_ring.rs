//! Property-based tests: ring ownership, routing, and load balancing.

use d2_ring::balance::{self, BalanceConfig, LoadView};
use d2_ring::routing::Router;
use d2_ring::{NodeIdx, Ring};
use d2_types::Key;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn arb_fracs(max: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::btree_set(any::<u64>(), 2..max).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key is owned by exactly one node, and the owner's range
    /// contains the key.
    #[test]
    fn ownership_partitions_ring(node_ids in arb_fracs(24), keys in prop::collection::vec(any::<u64>(), 1..32)) {
        let mut ring = Ring::new();
        for id in &node_ids {
            ring.add_node(Key::from_u64_ordered(*id));
        }
        for k in keys {
            let key = Key::from_u64_ordered(k);
            let owner = ring.owner_of(&key).unwrap();
            let covering: Vec<NodeIdx> = ring
                .nodes()
                .into_iter()
                .filter(|&n| ring.range_of(n).unwrap().contains(&key))
                .collect();
            prop_assert_eq!(covering, vec![owner]);
        }
    }

    /// Replica groups are the r clockwise-successive distinct nodes.
    #[test]
    fn replica_groups_follow_ring_order(node_ids in arb_fracs(16), k in any::<u64>(), r in 1usize..6) {
        let mut ring = Ring::new();
        for id in &node_ids {
            ring.add_node(Key::from_u64_ordered(*id));
        }
        let key = Key::from_u64_ordered(k);
        let group = ring.replica_group(&key, r);
        prop_assert_eq!(group.len(), r.min(ring.len()));
        // First member is the owner; each member is the successor of the
        // previous one.
        prop_assert_eq!(group[0], ring.owner_of(&key).unwrap());
        for w in group.windows(2) {
            prop_assert_eq!(ring.successor(w[0]), Some(w[1]));
        }
        // All distinct.
        let mut dedup = group.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), group.len());
    }

    /// Routed lookups always reach the true owner, from any start.
    #[test]
    fn routing_always_reaches_owner(node_ids in arb_fracs(40), keys in prop::collection::vec(any::<u64>(), 1..16)) {
        let mut ring = Ring::new();
        for id in &node_ids {
            ring.add_node(Key::from_u64_ordered(*id));
        }
        let router = Router::build(&ring, 3);
        let start = ring.node_at_rank(0).unwrap();
        for k in keys {
            let key = Key::from_u64_ordered(k);
            let stats = router.lookup(&ring, start, &key).unwrap();
            prop_assert_eq!(stats.owner, ring.owner_of(&key).unwrap());
            prop_assert!(stats.hops as usize <= ring.len());
        }
    }
}

struct MapLoad {
    blocks: BTreeMap<Key, ()>,
    ring: Ring,
}

impl MapLoad {
    fn owned(&self, node: NodeIdx) -> Vec<Key> {
        match self.ring.range_of(node) {
            Some(r) => self
                .blocks
                .keys()
                .filter(|k| r.contains(k))
                .copied()
                .collect(),
            None => vec![],
        }
    }
}

impl LoadView for MapLoad {
    fn primary_load(&self, node: NodeIdx) -> u64 {
        self.owned(node).len() as u64
    }
    fn split_key(&self, node: NodeIdx) -> Option<Key> {
        let ks = self.owned(node);
        if ks.len() < 2 {
            None
        } else {
            Some(ks[ks.len() / 2 - 1])
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any accepted balance op: (a) total block count is conserved,
    /// (b) the mover's new load and the heavy node's remaining load are a
    /// nontrivial split of the heavy node's old load.
    #[test]
    fn balance_ops_split_load(
        node_ids in arb_fracs(12),
        block_ids in prop::collection::btree_set(any::<u64>(), 8..64),
    ) {
        let mut ring = Ring::new();
        for id in &node_ids {
            ring.add_node(Key::from_u64_ordered(*id));
        }
        let blocks: BTreeMap<Key, ()> =
            block_ids.iter().map(|&b| (Key::from_u64_ordered(b), ())).collect();
        let total = blocks.len() as u64;
        let mut state = MapLoad { blocks, ring };
        let cfg = BalanceConfig::default();

        let nodes = state.ring.nodes();
        for &prober in &nodes {
            for &target in &nodes {
                if let Some(op) = balance::probe(&state.ring, &state, prober, target, &cfg) {
                    let heavy_before = state.primary_load(op.heavy());
                    let mut ring2 = state.ring.clone();
                    prop_assert!(balance::apply_to_ring(&mut ring2, &op));
                    let state2 = MapLoad { blocks: state.blocks.clone(), ring: ring2 };
                    // Conservation.
                    let sum: u64 = state2.ring.nodes().iter().map(|&n| state2.primary_load(n)).sum();
                    prop_assert_eq!(sum, total);
                    // The heavy node sheds at least one block to the mover.
                    let heavy_after = state2.primary_load(op.heavy());
                    prop_assert!(heavy_after < heavy_before);
                    let mover_after = state2.primary_load(op.mover());
                    prop_assert!(mover_after >= 1);
                }
            }
        }
        let _ = &mut state;
    }
}
