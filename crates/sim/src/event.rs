//! A deterministic virtual-time event queue.
//!
//! Time is measured in integer microseconds ([`SimTime`]) so simulations
//! are exactly reproducible across runs and platforms. Events with equal
//! timestamps pop in insertion order (a monotonic sequence number breaks
//! ties), which keeps multi-component simulations deterministic.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Virtual time in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Constructs from fractional seconds (rounds to microseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e6).round() as u64)
    }

    /// Whole seconds (truncated).
    pub fn as_secs(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Milliseconds (truncated).
    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000
    }

    /// Microseconds.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A priority queue of timestamped events, popping in time order with
/// FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use d2_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(5), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    at: Reverse<(SimTime, u64)>,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at)
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at time `at`.
    pub fn push(&mut self, at: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at: Reverse((at, seq)),
            item,
        });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.at.0 .0, e.item))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_millis(500);
        assert_eq!((a + b).as_millis(), 2500);
        assert_eq!((a - b).as_millis(), 1500);
        assert_eq!(a.saturating_sub(SimTime::from_secs(5)), SimTime::ZERO);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
        let mut c = a;
        c += b;
        assert_eq!(c.as_millis(), 2500);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "a");
        q.push(SimTime::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_secs(5), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
