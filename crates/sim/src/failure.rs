//! Node failure traces (substituting for the PlanetLab Feb 22–28 2003
//! trace used in Section 8.1).
//!
//! The paper replays the observed up/down behaviour of 247 PlanetLab nodes
//! during "a week with a particularly large number of failures", chosen
//! because correlated failures are what actually hurt availability. The
//! generator here produces, per node, an alternating renewal process of up
//! and down sessions (exponential MTTF/MTTR), overlaid with *correlated
//! failure events* in which a random fraction of all nodes fails
//! simultaneously — the signature of the power/network incidents in the
//! real trace.
//!
//! The default parameters are calibrated so that the probability that all
//! 3 nodes of a replica group are simultaneously down at some point during
//! the week (without regeneration) is ≈ 0.02, the figure the paper reports
//! for its trace (Section 8.2).

use crate::event::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic failure trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FailureModel {
    /// Mean time to (independent) failure, seconds.
    pub mttf_secs: f64,
    /// Mean time to repair, seconds.
    pub mttr_secs: f64,
    /// Expected number of correlated failure events over the trace.
    pub correlated_events: f64,
    /// Fraction of nodes taken down by each correlated event.
    pub correlated_fraction: f64,
    /// Mean outage duration of a correlated event, seconds.
    pub correlated_mttr_secs: f64,
    /// Trace duration, seconds.
    pub duration_secs: f64,
}

impl Default for FailureModel {
    fn default() -> Self {
        // One week; independent failures every ~3 days lasting ~2.5 hours,
        // plus ~4 correlated events each taking down ~12% of nodes for a
        // mean of ~2 hours. See DESIGN.md §3 for the calibration note.
        FailureModel {
            mttf_secs: 3.0 * 86_400.0,
            mttr_secs: 2.5 * 3_600.0,
            correlated_events: 4.0,
            correlated_fraction: 0.12,
            correlated_mttr_secs: 2.0 * 3_600.0,
            duration_secs: 7.0 * 86_400.0,
        }
    }
}

/// A generated trace: per-node sorted down intervals.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FailureTrace {
    /// `downs[node]` = sorted, disjoint `(down_at, up_at)` intervals.
    downs: Vec<Vec<(SimTime, SimTime)>>,
    /// Trace horizon.
    pub duration: SimTime,
}

impl FailureTrace {
    /// Generates a trace for `n` nodes from `model`.
    pub fn generate<R: Rng + ?Sized>(n: usize, model: &FailureModel, rng: &mut R) -> FailureTrace {
        let mut downs: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); n];
        let horizon = model.duration_secs;

        // Independent failures per node.
        for intervals in downs.iter_mut() {
            let mut t = exp(rng, model.mttf_secs);
            while t < horizon {
                let repair = exp(rng, model.mttr_secs).max(30.0);
                let end = (t + repair).min(horizon);
                intervals.push((SimTime::from_secs_f64(t), SimTime::from_secs_f64(end)));
                t = end + exp(rng, model.mttf_secs);
            }
        }

        // Correlated events: Poisson count, uniform times.
        let events = poisson(rng, model.correlated_events);
        for _ in 0..events {
            let at = rng.random::<f64>() * horizon;
            let outage = exp(rng, model.correlated_mttr_secs).max(60.0);
            let end = (at + outage).min(horizon);
            for intervals in downs.iter_mut() {
                if rng.random::<f64>() < model.correlated_fraction {
                    intervals.push((SimTime::from_secs_f64(at), SimTime::from_secs_f64(end)));
                }
            }
        }

        // Normalize: sort and merge overlaps.
        for intervals in downs.iter_mut() {
            intervals.sort();
            let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(intervals.len());
            for &(s, e) in intervals.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => {
                        if e > last.1 {
                            last.1 = e;
                        }
                    }
                    _ => merged.push((s, e)),
                }
            }
            *intervals = merged;
        }

        FailureTrace {
            downs,
            duration: SimTime::from_secs_f64(horizon),
        }
    }

    /// A trace in which no node ever fails (for overhead-only simulations,
    /// as in Section 10).
    pub fn none(n: usize, duration: SimTime) -> FailureTrace {
        FailureTrace {
            downs: vec![Vec::new(); n],
            duration,
        }
    }

    /// Number of nodes covered by the trace.
    pub fn len(&self) -> usize {
        self.downs.len()
    }

    /// Whether the trace covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.downs.is_empty()
    }

    /// Whether `node` is up at time `t`.
    pub fn is_up(&self, node: usize, t: SimTime) -> bool {
        self.downs[node].iter().all(|&(s, e)| !(s <= t && t < e))
    }

    /// All `(time, node, up?)` transitions in time order — the event feed
    /// for the availability simulator.
    pub fn transitions(&self) -> Vec<(SimTime, usize, bool)> {
        let mut out = Vec::new();
        for (node, intervals) in self.downs.iter().enumerate() {
            for &(s, e) in intervals {
                out.push((s, node, false));
                if e < self.duration {
                    out.push((e, node, true));
                }
            }
        }
        out.sort();
        out
    }

    /// Down intervals of `node`.
    pub fn downs_of(&self, node: usize) -> &[(SimTime, SimTime)] {
        &self.downs[node]
    }

    /// Fraction of node-time spent down (for reporting).
    pub fn mean_unavailability(&self) -> f64 {
        if self.downs.is_empty() || self.duration == SimTime::ZERO {
            return 0.0;
        }
        // `.max(0.0)`: summing zero intervals yields -0.0, which would
        // print as "-0.000%" in reports.
        let total: f64 = self
            .downs
            .iter()
            .flat_map(|iv| iv.iter())
            .map(|&(s, e)| e.as_secs_f64() - s.as_secs_f64())
            .sum::<f64>()
            .max(0.0);
        total / (self.downs.len() as f64 * self.duration.as_secs_f64())
    }

    /// Probability that a whole replica group of `r` ring-adjacent nodes
    /// (nodes `g..g+r`) is simultaneously down at some instant during the
    /// trace — the calibration statistic from Section 8.2.
    pub fn group_failure_probability(&self, r: usize) -> f64 {
        let n = self.len();
        if n < r {
            return 0.0;
        }
        let mut failed_groups = 0usize;
        for g in 0..n {
            let members: Vec<usize> = (0..r).map(|i| (g + i) % n).collect();
            // Scan transitions of the members for a moment all are down.
            let mut times: Vec<SimTime> = members
                .iter()
                .flat_map(|&m| self.downs[m].iter().map(|&(s, _)| s))
                .collect();
            times.sort();
            if times
                .iter()
                .any(|&t| members.iter().all(|&m| !self.is_up(m, t)))
            {
                failed_groups += 1;
            }
        }
        failed_groups as f64 / n as f64
    }
}

fn exp<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    -mean * u.ln()
}

fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    // Knuth's method; lambda is small here.
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn intervals_sorted_and_disjoint() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let trace = FailureTrace::generate(50, &FailureModel::default(), &mut rng);
        for node in 0..trace.len() {
            let iv = trace.downs_of(node);
            for w in iv.windows(2) {
                assert!(w[0].1 < w[1].0, "intervals must be disjoint and sorted");
            }
            for &(s, e) in iv {
                assert!(s < e);
                assert!(e <= trace.duration);
            }
        }
    }

    #[test]
    fn is_up_matches_intervals() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let trace = FailureTrace::generate(10, &FailureModel::default(), &mut rng);
        for node in 0..10 {
            for &(s, e) in trace.downs_of(node) {
                assert!(!trace.is_up(node, s));
                let mid = SimTime::from_micros((s.as_micros() + e.as_micros()) / 2);
                assert!(!trace.is_up(node, mid));
                assert!(trace.is_up(node, e)); // half-open
            }
        }
    }

    #[test]
    fn transitions_are_time_ordered_and_paired() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let trace = FailureTrace::generate(20, &FailureModel::default(), &mut rng);
        let ts = trace.transitions();
        for w in ts.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Each node alternates down/up in its own subsequence.
        for node in 0..20 {
            let mine: Vec<bool> = ts.iter().filter(|t| t.1 == node).map(|t| t.2).collect();
            for w in mine.windows(2) {
                assert_ne!(w[0], w[1], "transitions must alternate");
            }
            if let Some(first) = mine.first() {
                assert!(!first, "first transition is a failure");
            }
        }
    }

    #[test]
    fn group_failure_probability_calibrated() {
        // Averaged over seeds, P(3-replica group all down at once) should
        // sit near the paper's 0.02 (generously: 0.2% – 8%).
        let mut total = 0.0;
        for seed in 0..5 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let trace = FailureTrace::generate(247, &FailureModel::default(), &mut rng);
            total += trace.group_failure_probability(3);
        }
        let p = total / 5.0;
        assert!(
            (0.002..0.08).contains(&p),
            "group failure probability {p} off target 0.02"
        );
    }

    #[test]
    fn none_trace_is_always_up() {
        let trace = FailureTrace::none(5, SimTime::from_secs(100));
        for node in 0..5 {
            assert!(trace.is_up(node, SimTime::from_secs(50)));
        }
        assert!(trace.transitions().is_empty());
        assert_eq!(trace.mean_unavailability(), 0.0);
    }

    #[test]
    fn mean_unavailability_reasonable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let trace = FailureTrace::generate(100, &FailureModel::default(), &mut rng);
        let u = trace.mean_unavailability();
        // MTTR 2.5h / (MTTF 72h) ≈ 3.4% plus correlated events.
        assert!((0.005..0.15).contains(&u), "unavailability {u}");
    }

    #[test]
    fn deterministic_given_seed() {
        let t1 = FailureTrace::generate(
            30,
            &FailureModel::default(),
            &mut rand::rngs::StdRng::seed_from_u64(7),
        );
        let t2 = FailureTrace::generate(
            30,
            &FailureModel::default(),
            &mut rand::rngs::StdRng::seed_from_u64(7),
        );
        for n in 0..30 {
            assert_eq!(t1.downs_of(n), t2.downs_of(n));
        }
    }
}
