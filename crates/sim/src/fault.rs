//! Message-level fault injection driven by [`FailureTrace`]s.
//!
//! The availability simulator deliberately ignores routing transients
//! (Section 8.1 argues replica placement dominates), but the paper's §8
//! churn numbers implicitly assume lookups keep succeeding *while* nodes
//! crash and rejoin. A [`FaultPlan`] makes that assumption testable: it
//! combines a node crash/rejoin schedule (an ordinary [`FailureTrace`])
//! with per-message drop and delay injection, so a routing layer can be
//! exercised against the same failure model the storage layer already
//! replays.
//!
//! Message fates are *stateless hashes* of `(seed, message sequence
//! number)`, not draws from a shared RNG stream: the fate of message
//! `n` never depends on how many random numbers some other subsystem
//! consumed first, which keeps whole-simulation runs byte-reproducible
//! even when instrumentation adds or removes RNG users.

use crate::event::SimTime;
use crate::failure::FailureTrace;
use serde::{Deserialize, Serialize};

/// Parameters of the injected message faults.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that any single message is silently dropped.
    pub drop_prob: f64,
    /// Fixed one-way delivery delay, microseconds (the "wire" part).
    pub base_delay_us: u64,
    /// Mean of the exponential jitter added on top, microseconds.
    pub jitter_mean_us: u64,
    /// Seed for the per-message fate hash.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        // 1% loss and ~40 ms one-way base delay with 20 ms mean jitter —
        // the wide-area regime of the paper's King-derived latency matrix.
        FaultConfig {
            drop_prob: 0.01,
            base_delay_us: 40_000,
            jitter_mean_us: 20_000,
            seed: 0,
        }
    }
}

/// What happened to one injected message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MessageFate {
    /// The message arrives after `delay_us` microseconds.
    Delivered {
        /// One-way delivery delay.
        delay_us: u64,
    },
    /// The message is silently lost (the sender only learns by timeout).
    Dropped,
}

/// A deterministic fault schedule: node crash/rejoin intervals plus
/// per-message drop/delay fates.
///
/// # Examples
///
/// ```
/// use d2_sim::{FaultConfig, FaultPlan, FailureTrace, MessageFate, SimTime};
///
/// let trace = FailureTrace::none(4, SimTime::from_secs(60));
/// let mut plan = FaultPlan::new(FaultConfig { drop_prob: 0.0, ..Default::default() }, trace);
/// assert!(plan.node_up(2, SimTime::from_secs(30)));
/// assert!(matches!(plan.next_fate(), MessageFate::Delivered { .. }));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultPlan {
    cfg: FaultConfig,
    trace: FailureTrace,
    sent: u64,
}

impl FaultPlan {
    /// Combines message-fault parameters with a crash/rejoin trace.
    pub fn new(cfg: FaultConfig, trace: FailureTrace) -> FaultPlan {
        FaultPlan {
            cfg,
            trace,
            sent: 0,
        }
    }

    /// A fault-free plan: every node up for `duration`, every message
    /// delivered after the base delay. Useful as a control arm.
    pub fn reliable(nodes: usize, duration: SimTime) -> FaultPlan {
        FaultPlan::new(
            FaultConfig {
                drop_prob: 0.0,
                jitter_mean_us: 0,
                ..FaultConfig::default()
            },
            FailureTrace::none(nodes, duration),
        )
    }

    /// The fault parameters in effect.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The underlying crash/rejoin trace.
    pub fn trace(&self) -> &FailureTrace {
        &self.trace
    }

    /// Whether `node` is up at time `t` (delegates to the trace).
    pub fn node_up(&self, node: usize, t: SimTime) -> bool {
        self.trace.is_up(node, t)
    }

    /// Messages whose fate has been decided so far.
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Decides the fate of the next message. Fates form a fixed
    /// per-plan sequence: the `n`-th call always returns the same fate
    /// for the same `(seed, n)`, independent of anything else.
    pub fn next_fate(&mut self) -> MessageFate {
        let n = self.sent;
        self.sent += 1;
        let h = mix(self.cfg.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if unit(h) < self.cfg.drop_prob {
            return MessageFate::Dropped;
        }
        let jitter = if self.cfg.jitter_mean_us == 0 {
            0
        } else {
            // Inverse-CDF exponential draw from a second hash.
            let u = unit(mix(h ^ 0xd1b5_4a32_d192_ed03));
            (-(1.0 - u).ln() * self.cfg.jitter_mean_us as f64) as u64
        };
        MessageFate::Delivered {
            delay_us: self.cfg.base_delay_us + jitter,
        }
    }
}

/// splitmix64 finalizer: full-avalanche 64-bit mix.
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to [0, 1) with 53 bits of precision.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(drop_prob: f64, seed: u64) -> FaultPlan {
        FaultPlan::new(
            FaultConfig {
                drop_prob,
                seed,
                ..FaultConfig::default()
            },
            FailureTrace::none(8, SimTime::from_secs(3600)),
        )
    }

    #[test]
    fn fates_are_a_pure_function_of_seed_and_sequence() {
        let mut a = plan(0.3, 7);
        let mut b = plan(0.3, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_fate(), b.next_fate());
        }
        assert_eq!(a.messages_sent(), 1000);
        // A different seed gives a different sequence.
        let mut c = plan(0.3, 8);
        let same = (0..1000).filter(|_| a.next_fate() == c.next_fate()).count();
        assert!(same < 1000);
    }

    #[test]
    fn drop_rate_tracks_drop_prob() {
        let mut p = plan(0.2, 3);
        let drops = (0..20_000)
            .filter(|_| matches!(p.next_fate(), MessageFate::Dropped))
            .count();
        let rate = drops as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "drop rate {rate} off 0.2");
    }

    #[test]
    fn delays_are_base_plus_nonnegative_jitter() {
        let mut p = plan(0.0, 5);
        let mut max = 0u64;
        for _ in 0..5000 {
            match p.next_fate() {
                MessageFate::Delivered { delay_us } => {
                    assert!(delay_us >= p.config().base_delay_us);
                    max = max.max(delay_us);
                }
                MessageFate::Dropped => panic!("drop_prob 0 must never drop"),
            }
        }
        assert!(
            max > p.config().base_delay_us,
            "jitter should add something over 5000 draws"
        );
    }

    #[test]
    fn reliable_plan_is_fixed_delay_and_always_up() {
        let mut p = FaultPlan::reliable(4, SimTime::from_secs(100));
        for _ in 0..100 {
            assert_eq!(
                p.next_fate(),
                MessageFate::Delivered {
                    delay_us: p.config().base_delay_us
                }
            );
        }
        for n in 0..4 {
            assert!(p.node_up(n, SimTime::from_secs(99)));
        }
    }

    #[test]
    fn node_up_delegates_to_the_trace() {
        use crate::failure::FailureModel;
        use rand::SeedableRng;
        let trace = FailureTrace::generate(
            16,
            &FailureModel::default(),
            &mut rand::rngs::StdRng::seed_from_u64(1),
        );
        let plan = FaultPlan::new(FaultConfig::default(), trace.clone());
        for node in 0..16 {
            for &(s, e) in trace.downs_of(node) {
                assert!(!plan.node_up(node, s));
                assert!(plan.node_up(node, e));
                let mid = SimTime::from_micros((s.as_micros() + e.as_micros()) / 2);
                assert!(!plan.node_up(node, mid));
            }
        }
    }
}
