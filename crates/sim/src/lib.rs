//! Discrete-event simulation substrate for the D2 evaluation.
//!
//! The paper evaluates D2 with (a) a long-running event-driven simulator
//! for availability and load balance (Sections 8 and 10) and (b) an
//! Emulab deployment with emulated wide-area latencies and access-link
//! capacities for performance (Section 9). This crate provides the
//! building blocks for both, re-implemented in Rust:
//!
//! - [`event`] — a deterministic virtual-time event queue.
//! - [`net`] — a synthetic pairwise latency matrix (standing in for the
//!   King/DNS measurements), per-node access links, and the TCP
//!   transfer-time model with per-flow slow-start restart that the paper
//!   analyses in Section 9.3 (footnotes 7–8).
//! - [`failure`] — a PlanetLab-like failure trace generator with
//!   correlated failure events (substituting for the Feb 2003 trace).
//! - [`fault`] — message-level fault injection (drops, delays, node
//!   crash/rejoin) driven by the failure traces, for churn-hardening
//!   the routing layer.
//! - [`metrics`] — counters, time series, and the normalized-standard-
//!   deviation load-imbalance metric of Section 10.

pub mod event;
pub mod failure;
pub mod fault;
pub mod metrics;
pub mod net;

pub use event::{EventQueue, SimTime};
pub use failure::{FailureModel, FailureTrace};
pub use fault::{FaultConfig, FaultPlan, MessageFate};
pub use metrics::{geometric_mean, max_over_mean, normalized_std_dev, Counter, TimeSeries};
pub use net::{LinkState, TcpConn, Topology};
