//! Measurement helpers: counters, time series, and the imbalance metric.

use crate::event::SimTime;
use serde::{Deserialize, Serialize};

/// Normalized standard deviation (σ / mean) of node storage loads —
/// the load-imbalance metric of Section 10 (Figures 16–17).
///
/// Returns 0 for empty input or zero mean.
pub fn normalized_std_dev(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let n = loads.len() as f64;
    let mean = loads.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = loads
        .iter()
        .map(|&l| (l as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Ratio of the maximum load to the mean (Section 10 reports 1.6× for D2
/// vs 2.4× for the traditional DHT).
pub fn max_over_mean(loads: &[u64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    *loads.iter().max().unwrap() as f64 / mean
}

/// A simple monotonic counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A timestamped series of samples, e.g. load imbalance over time.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample (times should be nondecreasing).
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// All samples in insertion order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the sample values.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum sample value (0 when the series is empty, matching
    /// [`TimeSeries::mean`]).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|(_, v)| *v).fold(0.0f64, f64::max)
    }

    /// Downsamples to at most `n` evenly spaced points (for printing).
    pub fn downsample(&self, n: usize) -> Vec<(SimTime, f64)> {
        if self.points.len() <= n || n == 0 {
            return self.points.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step) as usize])
            .collect()
    }
}

/// Geometric mean of positive ratios (Section 9.3 averages speedups this
/// way: "the average is computed using a geometric mean since we are
/// averaging ratios").
pub fn geometric_mean(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values.iter().copied().filter(|v| *v > 0.0).collect();
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nsd_of_uniform_is_zero() {
        assert_eq!(normalized_std_dev(&[5, 5, 5, 5]), 0.0);
    }

    #[test]
    fn nsd_grows_with_skew() {
        let balanced = normalized_std_dev(&[4, 5, 6, 5]);
        let skewed = normalized_std_dev(&[0, 0, 0, 20]);
        assert!(skewed > balanced);
        assert!((skewed - (3.0f64).sqrt()).abs() < 1e-9); // σ/μ of (0,0,0,20)
    }

    #[test]
    fn nsd_edge_cases() {
        assert_eq!(normalized_std_dev(&[]), 0.0);
        assert_eq!(normalized_std_dev(&[0, 0]), 0.0);
    }

    #[test]
    fn max_over_mean_works() {
        assert!((max_over_mean(&[1, 1, 1, 5]) - 2.5).abs() < 1e-9);
        assert_eq!(max_over_mean(&[]), 0.0);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn series_stats() {
        let mut s = TimeSeries::new();
        for i in 0..10u64 {
            s.push(SimTime::from_secs(i), i as f64);
        }
        assert_eq!(s.len(), 10);
        assert!((s.mean() - 4.5).abs() < 1e-9);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.downsample(5).len(), 5);
        assert_eq!(s.downsample(100).len(), 10);
    }

    #[test]
    fn empty_series_max_is_zero_not_neg_infinity() {
        let s = TimeSeries::new();
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
        // Speedup 2x and slowdown 0.5x cancel.
        assert!((geometric_mean(&[2.0, 0.5]) - 1.0).abs() < 1e-9);
    }
}
