//! Wide-area network models: latency matrix, access links, and TCP.
//!
//! The paper's Emulab topology "accurately models pairwise end-to-end
//! latencies between all virtual nodes", based on latencies measured
//! between thousands of DNS servers (the King data set), and caps each
//! node's access link at 1500 kbps or 384 kbps. We have no King data, so
//! [`Topology`] embeds nodes in a 2-D Euclidean plane with log-normal
//! jitter, calibrated to the paper's reported **mean RTT of ≈ 90 ms**
//! (Section 9.3).
//!
//! [`TcpConn`] reproduces the transfer-time behaviour the paper analyses
//! in footnotes 7–8: Linux senders start with a 2-packet congestion
//! window, a connection idle for longer than one RTO drops back to slow
//! start, and therefore a cold 8 KB block fetch costs at least 2 RTTs
//! plus serialization, while a warm connection streams at the full link
//! rate.

use crate::event::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Bytes of TCP payload per packet (1500-byte MTU minus headers).
pub const PACKET_PAYLOAD: usize = 1448;

/// Initial congestion window in packets (Linux 2.4, per footnote 7).
pub const INIT_CWND: u32 = 2;

/// A synthetic wide-area topology: per-node 2-D coordinates plus
/// deterministic per-pair jitter.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    coords: Vec<(f64, f64)>,
    /// Fixed per-node "last mile" one-way delay in ms.
    access_ms: Vec<f64>,
    /// Propagation scale: ms per unit of Euclidean distance.
    ms_per_unit: f64,
}

impl Topology {
    /// Samples a topology of `n` nodes whose mean pairwise RTT is close to
    /// `target_mean_rtt_ms` (the paper's network has a 90 ms mean).
    pub fn sample<R: Rng + ?Sized>(n: usize, target_mean_rtt_ms: f64, rng: &mut R) -> Topology {
        // Mean distance between two uniform points in a unit square
        // ≈ 0.5214. RTT = 2 * (dist * ms_per_unit + access_a + access_b).
        // With mean access delay `acc`, mean RTT ≈ 2*0.5214*scale + 4*acc.
        let acc_mean = 4.0; // ms, per side
        let scale = (target_mean_rtt_ms - 4.0 * acc_mean) / (2.0 * 0.5214);
        let coords = (0..n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        let access_ms = (0..n)
            .map(|_| {
                // Log-normal-ish jitter around the mean access delay.
                let u: f64 = rng.random::<f64>();
                acc_mean * (0.5 + u)
            })
            .collect();
        Topology {
            coords,
            access_ms,
            ms_per_unit: scale.max(1.0),
        }
    }

    /// [`Topology::sample`] without an external RNG: coordinates and
    /// access delays come from a private splitmix64 stream over `seed`,
    /// so callers that must stay independent of the `rand` crate's
    /// stream evolution (the deterministic simulation harness pins
    /// byte-identical schedules to a seed) get a stable topology per
    /// seed forever.
    pub fn sample_seeded(n: usize, target_mean_rtt_ms: f64, seed: u64) -> Topology {
        let mut state = seed ^ 0x5bf0_3635_16f5_a1c3;
        let mut next_unit = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let acc_mean = 4.0; // ms, per side (matches `sample`)
        let scale = (target_mean_rtt_ms - 4.0 * acc_mean) / (2.0 * 0.5214);
        let coords = (0..n).map(|_| (next_unit(), next_unit())).collect();
        let access_ms = (0..n).map(|_| acc_mean * (0.5 + next_unit())).collect();
        Topology {
            coords,
            access_ms,
            ms_per_unit: scale.max(1.0),
        }
    }

    /// One-way latency between `a` and `b` in whole microseconds — the
    /// unit external schedulers (e.g. `d2-dst`'s virtual event queue)
    /// work in.
    pub fn one_way_us(&self, a: usize, b: usize) -> u64 {
        self.one_way(a, b).as_micros()
    }

    /// Number of nodes in the topology.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// One-way latency between nodes `a` and `b`.
    pub fn one_way(&self, a: usize, b: usize) -> SimTime {
        if a == b {
            return SimTime::from_micros(50); // loopback
        }
        let (ax, ay) = self.coords[a];
        let (bx, by) = self.coords[b];
        let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        let ms = dist * self.ms_per_unit + self.access_ms[a] + self.access_ms[b];
        SimTime::from_secs_f64(ms / 1e3)
    }

    /// Round-trip time between nodes `a` and `b`.
    pub fn rtt(&self, a: usize, b: usize) -> SimTime {
        let one = self.one_way(a, b);
        one + one
    }

    /// Mean RTT over all distinct pairs (O(n²); for reporting).
    pub fn mean_rtt(&self) -> SimTime {
        let n = self.len();
        if n < 2 {
            return SimTime::ZERO;
        }
        let mut total = 0u64;
        let mut pairs = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                total += self.rtt(a, b).as_micros();
                pairs += 1;
            }
        }
        SimTime::from_micros(total / pairs)
    }
}

/// A node's access link: serializes transmissions FIFO at a fixed rate.
///
/// Used both for the performance testbed (1500/384 kbps access links) and
/// for the availability simulator's 750 kbps migration budget.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkState {
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// Virtual time until which the link is busy.
    pub busy_until: SimTime,
}

impl LinkState {
    /// Creates an idle link with the given rate in kbps.
    pub fn new_kbps(kbps: u64) -> Self {
        LinkState {
            rate_bps: kbps * 1000,
            busy_until: SimTime::ZERO,
        }
    }

    /// Time needed to serialize `bytes` onto the link.
    pub fn serialization(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps as f64)
    }

    /// Enqueues a transmission of `bytes` at `now`; returns the time the
    /// last bit leaves the link. Transmissions queue FIFO behind earlier
    /// ones.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        let done = start + self.serialization(bytes);
        self.busy_until = done;
        done
    }

    /// Queueing delay a transmission would currently experience.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }
}

/// Per-(client, server) TCP connection state for the transfer-time model.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct TcpConn {
    /// When the connection last carried data.
    pub last_used: Option<SimTime>,
    /// Congestion window (packets) at the end of the last transfer.
    pub cwnd: u32,
}

impl TcpConn {
    /// Retransmission timeout after which an idle connection re-enters
    /// slow start (Linux clamps the RTO to at least 200 ms; with wide-area
    /// RTTs it is on the order of seconds — the paper's point is that 14 s
    /// inter-access gaps always exceed it).
    pub fn rto(rtt: SimTime) -> SimTime {
        let double = rtt + rtt;
        if double > SimTime::from_millis(1000) {
            double
        } else {
            SimTime::from_millis(1000)
        }
    }

    /// Computes the duration of a `bytes`-long application-level fetch
    /// over this connection (request + response), updating the window
    /// state.
    ///
    /// - `rtt` — path round-trip time;
    /// - `rate` — bottleneck rate in bits/s (the server's access link);
    /// - connections are assumed pre-established (the paper pre-connects
    ///   all node pairs to emulate an optimized transport, Section 9.1).
    ///
    /// A cold (or long-idle) connection pays slow-start round trips:
    /// window 2, 4, 8, … packets per RTT until the block is covered
    /// (footnote 7: ≥ 2 RTTs for an 8 KB block). A warm connection pays
    /// one RTT (request + first byte) plus serialization.
    pub fn fetch(&mut self, now: SimTime, bytes: u64, rtt: SimTime, rate: u64) -> SimTime {
        let idle_reset = match self.last_used {
            Some(t) => now.saturating_sub(t) > Self::rto(rtt),
            None => true,
        };
        if idle_reset || self.cwnd < INIT_CWND {
            self.cwnd = INIT_CWND;
        }
        let pkts = bytes.div_ceil(PACKET_PAYLOAD as u64).max(1);
        let serialization = SimTime::from_secs_f64(bytes as f64 * 8.0 / rate as f64);

        // Count slow-start rounds needed before the remaining data fits in
        // the current window.
        let mut window = self.cwnd as u64;
        let mut sent = 0u64;
        let mut rounds = 0u64;
        while sent + window < pkts {
            sent += window;
            window *= 2;
            rounds += 1;
        }
        // The final window's packets are acked too, doubling cwnd once more.
        self.cwnd = ((window * 2) as u32).min(1 << 16);
        self.last_used = Some(now);

        // One RTT for request/first-window, plus one RTT per extra
        // slow-start round, plus serialization of the payload.
        let mut total = rtt + serialization;
        for _ in 0..rounds {
            total += rtt;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn topology_mean_rtt_near_target() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let topo = Topology::sample(120, 90.0, &mut rng);
        let mean = topo.mean_rtt().as_secs_f64() * 1e3;
        assert!(
            (60.0..130.0).contains(&mean),
            "mean rtt {mean} ms not near 90"
        );
    }

    #[test]
    fn seeded_topology_is_deterministic_and_calibrated() {
        let a = Topology::sample_seeded(64, 90.0, 7);
        let b = Topology::sample_seeded(64, 90.0, 7);
        for x in 0..a.len() {
            for y in 0..a.len() {
                assert_eq!(a.one_way_us(x, y), b.one_way_us(x, y));
            }
        }
        let mean = a.mean_rtt().as_secs_f64() * 1e3;
        assert!(
            (60.0..130.0).contains(&mean),
            "seeded mean rtt {mean} ms not near 90"
        );
        let c = Topology::sample_seeded(64, 90.0, 8);
        assert_ne!(a.one_way_us(0, 1), c.one_way_us(0, 1));
    }

    #[test]
    fn latency_symmetric_and_positive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let topo = Topology::sample(20, 90.0, &mut rng);
        for a in 0..topo.len() {
            for b in 0..topo.len() {
                assert_eq!(topo.one_way(a, b), topo.one_way(b, a));
                assert!(topo.one_way(a, b) > SimTime::ZERO);
            }
        }
    }

    #[test]
    fn loopback_is_fast() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let topo = Topology::sample(5, 90.0, &mut rng);
        assert!(topo.rtt(2, 2) < SimTime::from_millis(1));
    }

    #[test]
    fn link_serializes_fifo() {
        let mut link = LinkState::new_kbps(1500);
        // 8 KB at 1500 kbps = 8192*8/1.5e6 s ≈ 43.7 ms.
        let t1 = link.transmit(SimTime::ZERO, 8192);
        assert!((t1.as_secs_f64() - 0.0437).abs() < 0.001, "{t1}");
        // A second transmission queues behind the first.
        let t2 = link.transmit(SimTime::ZERO, 8192);
        assert!((t2.as_secs_f64() - 2.0 * 0.0437).abs() < 0.002, "{t2}");
        // After the link drains, no queueing.
        let t3 = link.transmit(SimTime::from_secs(1), 8192);
        assert!((t3.as_secs_f64() - 1.0437).abs() < 0.001, "{t3}");
    }

    #[test]
    fn cold_fetch_pays_two_rtts_for_8kb() {
        // Footnote 7: with a 2-packet initial window and 8 KB blocks, at
        // least 2 RTTs are required.
        let mut conn = TcpConn::default();
        let rtt = SimTime::from_millis(90);
        let d = conn.fetch(SimTime::ZERO, 8192, rtt, 1_500_000);
        // 8192 bytes = 6 packets: window 2 sends 2 (1 extra round), window
        // 4 sends next... rounds: sent=0,w=2 -> 2<6: sent=2,w=4,r=1 ->
        // 6>=6 stop. So 1 extra round: total = 2*rtt + serialization.
        let expect = 2.0 * 0.09 + 8192.0 * 8.0 / 1.5e6;
        assert!((d.as_secs_f64() - expect).abs() < 0.002, "{d} vs {expect}");
    }

    #[test]
    fn warm_connection_streams() {
        let mut conn = TcpConn::default();
        let rtt = SimTime::from_millis(90);
        let _ = conn.fetch(SimTime::ZERO, 8192, rtt, 1_500_000);
        // Immediately fetch again: window is now >= 6 packets, one RTT.
        let d = conn.fetch(SimTime::from_millis(200), 8192, rtt, 1_500_000);
        let expect = 0.09 + 8192.0 * 8.0 / 1.5e6;
        assert!((d.as_secs_f64() - expect).abs() < 0.002, "{d} vs {expect}");
    }

    #[test]
    fn idle_connection_restarts_slow_start() {
        let mut conn = TcpConn::default();
        let rtt = SimTime::from_millis(90);
        let _ = conn.fetch(SimTime::ZERO, 8192, rtt, 1_500_000);
        let warm = conn
            .fetch(SimTime::from_millis(500), 8192, rtt, 1_500_000)
            .as_secs_f64();
        // 14 seconds idle (paper's expected inter-access gap) > RTO.
        let cold = conn
            .fetch(SimTime::from_secs(15), 8192, rtt, 1_500_000)
            .as_secs_f64();
        assert!(
            cold > warm + 0.08,
            "cold {cold} should exceed warm {warm} by ~1 RTT"
        );
    }

    #[test]
    fn small_fetch_single_rtt() {
        let mut conn = TcpConn::default();
        let rtt = SimTime::from_millis(100);
        // 1 KB fits in the initial window.
        let d = conn.fetch(SimTime::ZERO, 1024, rtt, 1_500_000);
        let expect = 0.1 + 1024.0 * 8.0 / 1.5e6;
        assert!((d.as_secs_f64() - expect).abs() < 0.002);
    }

    #[test]
    fn slower_link_longer_serialization() {
        let mut fast = TcpConn::default();
        let mut slow = TcpConn::default();
        let rtt = SimTime::from_millis(90);
        let df = fast.fetch(SimTime::ZERO, 8192, rtt, 1_500_000);
        let ds = slow.fetch(SimTime::ZERO, 8192, rtt, 384_000);
        assert!(ds > df);
        assert!(
            (ds.as_secs_f64() - df.as_secs_f64() - 8192.0 * 8.0 * (1.0 / 384e3 - 1.0 / 1.5e6))
                .abs()
                < 0.002
        );
    }
}
