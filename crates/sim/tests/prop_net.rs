//! Property tests for the network and failure models.

use d2_sim::net::{LinkState, TcpConn};
use d2_sim::{FailureModel, FailureTrace, SimTime, Topology};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TCP fetch time is monotone in transfer size (same connection state,
    /// same path).
    #[test]
    fn tcp_fetch_monotone_in_size(bytes in 1u64..2_000_000, rtt_ms in 1u64..500) {
        let rtt = SimTime::from_millis(rtt_ms);
        let mut a = TcpConn::default();
        let mut b = TcpConn::default();
        let d_small = a.fetch(SimTime::ZERO, bytes, rtt, 1_500_000);
        let d_big = b.fetch(SimTime::ZERO, bytes + 100_000, rtt, 1_500_000);
        prop_assert!(d_big >= d_small);
    }

    /// A warm connection is never slower than a cold one.
    #[test]
    fn warm_never_slower_than_cold(bytes in 1u64..500_000, rtt_ms in 1u64..300) {
        let rtt = SimTime::from_millis(rtt_ms);
        let mut cold = TcpConn::default();
        let cold_time = cold.fetch(SimTime::ZERO, bytes, rtt, 1_500_000);
        // `cold` is now warm; fetch again immediately.
        let warm_time = cold.fetch(SimTime::from_millis(1), bytes, rtt, 1_500_000);
        prop_assert!(warm_time <= cold_time);
    }

    /// Link serialization: completion times are FIFO-monotone and never
    /// before `now + serialization`.
    #[test]
    fn link_fifo_monotone(sizes in prop::collection::vec(1u64..100_000, 1..20)) {
        let mut link = LinkState::new_kbps(1500);
        let mut last = SimTime::ZERO;
        for s in sizes {
            let done = link.transmit(SimTime::ZERO, s);
            prop_assert!(done >= last, "completions must be FIFO");
            prop_assert!(done >= link.serialization(s));
            last = done;
        }
    }

    /// Topology latencies are symmetric, positive, and triangle-ish (we
    /// only require symmetry + positivity; the embedding guarantees the
    /// rest up to access-delay constants).
    #[test]
    fn topology_sane(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let topo = Topology::sample(n, 90.0, &mut rng);
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(topo.one_way(a, b), topo.one_way(b, a));
                if a != b {
                    prop_assert!(topo.one_way(a, b) > SimTime::ZERO);
                }
            }
        }
    }

    /// Failure traces: up/down intervals are consistent with the
    /// transitions feed.
    #[test]
    fn failure_transitions_consistent(seed in any::<u64>(), n in 2usize..40) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let model = FailureModel { duration_secs: 2.0 * 86_400.0, ..Default::default() };
        let trace = FailureTrace::generate(n, &model, &mut rng);
        // Replaying transitions yields exactly the is_up state.
        let mut up = vec![true; n];
        let mut ts = trace.transitions();
        ts.push((trace.duration, usize::MAX, true)); // sentinel
        let mut idx = 0;
        for check in 0..48u64 {
            let t = SimTime::from_secs(check * 3600);
            while idx < ts.len() && ts[idx].0 <= t {
                let (_, node, state) = ts[idx];
                if node != usize::MAX {
                    up[node] = state;
                }
                idx += 1;
            }
            for (node, &expected) in up.iter().enumerate() {
                prop_assert_eq!(
                    trace.is_up(node, t),
                    expected,
                    "node {} at {}h", node, check
                );
            }
        }
    }
}
