//! A small TTL'd retrieval cache for hot blocks.
//!
//! D2 balances *storage* load with Mercury, but *request* load can still
//! concentrate on popular blocks. Like PAST, it "alleviates temporary hot
//! spots using retrieval caches" (Section 6): clients keep recently
//! fetched blocks for a short window so repeated reads (the paper's D2-FS
//! uses a 30-second window) do not hit the network at all.

use d2_obs::{CacheResult, CacheTier, SharedSink, TraceEvent};
use d2_sim::SimTime;
use d2_types::Key;
use std::collections::HashMap;

/// A capacity- and TTL-bounded block cache.
///
/// Eviction: expired entries first, then least-recently-inserted.
#[derive(Clone, Debug)]
pub struct BlockCache {
    entries: HashMap<Key, (Vec<u8>, SimTime)>,
    order: Vec<Key>,
    capacity: usize,
    ttl: SimTime,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Creates a cache holding up to `capacity` blocks for `ttl` each.
    pub fn new(capacity: usize, ttl: SimTime) -> Self {
        BlockCache {
            entries: HashMap::new(),
            order: Vec::new(),
            capacity: capacity.max(1),
            ttl,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached blocks (possibly including expired, pre-eviction).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fetches a block if present and fresh.
    pub fn get(&mut self, key: &Key, now: SimTime) -> Option<Vec<u8>> {
        match self.entries.get(key) {
            Some((data, at)) if now.saturating_sub(*at) <= self.ttl => {
                self.hits += 1;
                Some(data.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// [`BlockCache::get`] plus a [`TraceEvent::CacheProbe`] record in
    /// `sink` (tier [`CacheTier::Block`]).
    pub fn get_traced(
        &mut self,
        key: &Key,
        now: SimTime,
        user: u32,
        sink: &SharedSink,
    ) -> Option<Vec<u8>> {
        let data = self.get(key, now);
        let hit = data.is_some();
        sink.record_with(|| TraceEvent::CacheProbe {
            t_us: now.as_micros(),
            user,
            tier: CacheTier::Block,
            result: if hit {
                CacheResult::Hit
            } else {
                CacheResult::Miss
            },
            key: key.to_u64_lossy(),
        });
        data
    }

    /// Inserts a block, evicting as needed.
    pub fn put(&mut self, key: Key, data: Vec<u8>, now: SimTime) {
        if self.entries.insert(key, (data, now)).is_none() {
            self.order.push(key);
        }
        // Evict expired first.
        if self.entries.len() > self.capacity {
            let ttl = self.ttl;
            let expired: Vec<Key> = self
                .entries
                .iter()
                .filter(|(_, (_, at))| now.saturating_sub(*at) > ttl)
                .map(|(k, _)| *k)
                .collect();
            for k in expired {
                self.entries.remove(&k);
            }
            self.order.retain(|k| self.entries.contains_key(k));
        }
        // Then oldest-inserted.
        while self.entries.len() > self.capacity {
            let oldest = self.order.remove(0);
            self.entries.remove(&oldest);
        }
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key::from_u64(v)
    }

    #[test]
    fn caches_within_ttl() {
        let mut c = BlockCache::new(10, SimTime::from_secs(30));
        c.put(k(1), vec![42], SimTime::ZERO);
        assert_eq!(c.get(&k(1), SimTime::from_secs(30)), Some(vec![42]));
        assert_eq!(c.get(&k(1), SimTime::from_secs(31)), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = BlockCache::new(2, SimTime::from_secs(1000));
        c.put(k(1), vec![1], SimTime::ZERO);
        c.put(k(2), vec![2], SimTime::from_secs(1));
        c.put(k(3), vec![3], SimTime::from_secs(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k(1), SimTime::from_secs(2)), None);
        assert_eq!(c.get(&k(3), SimTime::from_secs(2)), Some(vec![3]));
    }

    #[test]
    fn expired_evicted_before_fresh() {
        let mut c = BlockCache::new(2, SimTime::from_secs(10));
        c.put(k(1), vec![1], SimTime::ZERO);
        c.put(k(2), vec![2], SimTime::from_secs(50));
        c.put(k(3), vec![3], SimTime::from_secs(51));
        // k1 was expired at insert time of k3, so it went first.
        assert_eq!(c.get(&k(2), SimTime::from_secs(51)), Some(vec![2]));
        assert_eq!(c.get(&k(3), SimTime::from_secs(51)), Some(vec![3]));
    }

    #[test]
    fn traced_get_records_block_tier() {
        let mut c = BlockCache::new(4, SimTime::from_secs(30));
        c.put(k(1), vec![42], SimTime::ZERO);
        let sink = SharedSink::memory(0);
        assert_eq!(
            c.get_traced(&k(1), SimTime::from_secs(1), 9, &sink),
            Some(vec![42])
        );
        assert_eq!(c.get_traced(&k(2), SimTime::from_secs(1), 9, &sink), None);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            TraceEvent::CacheProbe {
                tier: CacheTier::Block,
                result: CacheResult::Hit,
                user: 9,
                ..
            }
        ));
        assert!(matches!(
            &events[1],
            TraceEvent::CacheProbe {
                result: CacheResult::Miss,
                ..
            }
        ));
    }

    #[test]
    fn overwrite_same_key() {
        let mut c = BlockCache::new(2, SimTime::from_secs(10));
        c.put(k(1), vec![1], SimTime::ZERO);
        c.put(k(1), vec![9], SimTime::from_secs(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k(1), SimTime::from_secs(1)), Some(vec![9]));
        c.clear();
        assert!(c.is_empty());
    }
}
