//! D2-Store: the replicated block storage layer (paper Section 3, 5, 6).
//!
//! Responsibilities reproduced from the paper:
//!
//! - 8 KB block storage units with `put`/`get`/`remove(key, delay)`
//!   semantics and TTL-based auto-expiry ([`NodeStore`]);
//! - **block pointers** that defer data movement during load balancing and
//!   divert writes from full nodes ([`Payload::Pointer`],
//!   [`NodeStore::stale_pointers`]);
//! - **lookup caches** holding the key ranges and addresses of recently
//!   looked-up nodes, which is how D2 turns data locality into fewer DHT
//!   lookups ([`LookupCache`], Section 5);
//! - a small TTL'd **retrieval cache** for hot blocks, D2's answer to
//!   request-load hot spots (Section 6, "retrieval caches like
//!   traditional DHTs").
//!
//! Replica placement (which `r` nodes hold a block) is a function of the
//! ring, so the replication/migration *orchestration* lives in `d2-core`
//! where ring and stores meet; this crate owns all per-node state.

pub mod block_cache;
pub mod lookup_cache;
pub mod node_store;

pub use block_cache::BlockCache;
pub use lookup_cache::{CacheOutcome, LookupCache};
pub use node_store::{GcReport, NodeStore, Payload, StoredBlock};
