//! The lookup cache (paper Section 5).
//!
//! Every successful DHT lookup returns the owner's address *and its key
//! range*. D2-Store caches these; a later request whose key falls inside a
//! cached range skips the DHT lookup entirely. Because D2 keys are
//! locality-preserving, a user's next access very likely falls in a range
//! they already cached — this is where the up-to-95% lookup-traffic
//! reduction comes from.
//!
//! Entries expire after a TTL (the paper uses 1.25 hours, tuned to the
//! PlanetLab leave/join rate). A stale entry never harms correctness —
//! the store falls back to a routed lookup when the cached node misses —
//! it only costs latency, which callers model by charging a wasted RTT.

use d2_obs::{CacheResult, CacheTier, SharedSink, TraceEvent};
use d2_sim::SimTime;
use d2_types::{Key, KeyRange};
use serde::{Deserialize, Serialize};

/// The paper's default cache-entry TTL (1.25 hours).
pub const DEFAULT_TTL_SECS: u64 = 4500;

/// One cached lookup result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct CacheEntry {
    range: KeyRange,
    node: usize,
    inserted_at: SimTime,
}

/// Result of probing the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Key found in a live cached range: contact `node` directly.
    Hit {
        /// Node to contact.
        node: usize,
    },
    /// No usable entry: a DHT lookup is required.
    Miss,
}

/// A per-client cache of `(key range → node)` lookup results.
///
/// # Examples
///
/// ```
/// use d2_store::{CacheOutcome, LookupCache};
/// use d2_sim::SimTime;
/// use d2_types::{Key, KeyRange};
///
/// let mut cache = LookupCache::new(SimTime::from_secs(4500));
/// let range = KeyRange::new(Key::from_u64(10), Key::from_u64(20));
/// cache.insert(range, 7, SimTime::ZERO);
/// assert_eq!(cache.probe(&Key::from_u64(15), SimTime::ZERO), CacheOutcome::Hit { node: 7 });
/// assert_eq!(cache.probe(&Key::from_u64(25), SimTime::ZERO), CacheOutcome::Miss);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LookupCache {
    entries: Vec<CacheEntry>,
    ttl: SimTime,
    hits: u64,
    misses: u64,
}

impl LookupCache {
    /// Creates a cache with the given entry TTL.
    pub fn new(ttl: SimTime) -> Self {
        LookupCache {
            entries: Vec::new(),
            ttl,
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a cache with the paper's 1.25-hour TTL.
    pub fn with_default_ttl() -> Self {
        Self::new(SimTime::from_secs(DEFAULT_TTL_SECS))
    }

    /// Number of live entries (including not-yet-evicted expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over the cache's lifetime (0 if never probed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets hit/miss statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Probes the cache for `key`, counting a hit or miss.
    pub fn probe(&mut self, key: &Key, now: SimTime) -> CacheOutcome {
        self.evict_expired(now);
        match self.entries.iter().rev().find(|e| e.range.contains(key)) {
            Some(e) => {
                self.hits += 1;
                CacheOutcome::Hit { node: e.node }
            }
            None => {
                self.misses += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// [`LookupCache::probe`] plus a [`TraceEvent::CacheProbe`] record in
    /// `sink`. The paper's stale-hit case (cached node no longer owns the
    /// key) is only detectable by the caller, which reports it through its
    /// own fetch event; this tier records raw hit/miss.
    pub fn probe_traced(
        &mut self,
        key: &Key,
        now: SimTime,
        user: u32,
        sink: &SharedSink,
    ) -> CacheOutcome {
        let outcome = self.probe(key, now);
        sink.record_with(|| TraceEvent::CacheProbe {
            t_us: now.as_micros(),
            user,
            tier: CacheTier::Lookup,
            result: match outcome {
                CacheOutcome::Hit { .. } => CacheResult::Hit,
                CacheOutcome::Miss => CacheResult::Miss,
            },
            key: key.to_u64_lossy(),
        });
        outcome
    }

    /// Probes without recording statistics.
    pub fn peek(&self, key: &Key, now: SimTime) -> Option<usize> {
        self.entries
            .iter()
            .rev()
            .find(|e| !self.expired(e, now) && e.range.contains(key))
            .map(|e| e.node)
    }

    /// Inserts a lookup result, evicting any overlapping older entries
    /// (their information is superseded).
    pub fn insert(&mut self, range: KeyRange, node: usize, now: SimTime) {
        self.entries.retain(|e| !ranges_overlap(&e.range, &range));
        self.entries.push(CacheEntry {
            range,
            node,
            inserted_at: now,
        });
    }

    /// Drops every entry pointing at `node` (used when a direct contact
    /// fails and the node is presumed moved or dead).
    pub fn invalidate_node(&mut self, node: usize) {
        self.entries.retain(|e| e.node != node);
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    fn expired(&self, e: &CacheEntry, now: SimTime) -> bool {
        now.saturating_sub(e.inserted_at) > self.ttl
    }

    fn evict_expired(&mut self, now: SimTime) {
        let ttl = self.ttl;
        self.entries
            .retain(|e| now.saturating_sub(e.inserted_at) <= ttl);
    }
}

/// Whether two ring arcs overlap. Full ranges overlap everything.
fn ranges_overlap(a: &KeyRange, b: &KeyRange) -> bool {
    if a.is_full() || b.is_full() {
        return true;
    }
    a.contains(b.end()) || b.contains(a.end())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key::from_u64_ordered(v)
    }

    fn r(a: u64, b: u64) -> KeyRange {
        KeyRange::new(k(a), k(b))
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        assert_eq!(
            c.probe(&k(15), SimTime::ZERO),
            CacheOutcome::Hit { node: 1 }
        );
        assert_eq!(c.probe(&k(30), SimTime::ZERO), CacheOutcome::Miss);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.miss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn start_exclusive_end_inclusive() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        assert_eq!(c.probe(&k(10), SimTime::ZERO), CacheOutcome::Miss);
        assert_eq!(
            c.probe(&k(20), SimTime::ZERO),
            CacheOutcome::Hit { node: 1 }
        );
    }

    #[test]
    fn entries_expire_after_ttl() {
        let mut c = LookupCache::new(SimTime::from_secs(100));
        c.insert(r(10, 20), 1, SimTime::ZERO);
        assert!(matches!(
            c.probe(&k(15), SimTime::from_secs(100)),
            CacheOutcome::Hit { .. }
        ));
        assert_eq!(c.probe(&k(15), SimTime::from_secs(101)), CacheOutcome::Miss);
        assert!(c.is_empty(), "expired entries are evicted");
    }

    #[test]
    fn newer_overlapping_entry_supersedes() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 30), 1, SimTime::ZERO);
        // Node 2 split off half of node 1's range.
        c.insert(r(10, 20), 2, SimTime::from_secs(10));
        // The old overlapping entry was evicted wholesale: 25 now misses,
        // 15 hits on the new owner.
        assert_eq!(
            c.probe(&k(15), SimTime::from_secs(10)),
            CacheOutcome::Hit { node: 2 }
        );
        assert_eq!(c.probe(&k(25), SimTime::from_secs(10)), CacheOutcome::Miss);
    }

    #[test]
    fn disjoint_entries_coexist() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        c.insert(r(30, 40), 2, SimTime::ZERO);
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.probe(&k(15), SimTime::ZERO),
            CacheOutcome::Hit { node: 1 }
        );
        assert_eq!(
            c.probe(&k(35), SimTime::ZERO),
            CacheOutcome::Hit { node: 2 }
        );
    }

    #[test]
    fn wrapping_range_hits() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(KeyRange::new(k(u64::MAX - 5), k(5)), 3, SimTime::ZERO);
        assert_eq!(c.probe(&k(2), SimTime::ZERO), CacheOutcome::Hit { node: 3 });
        assert_eq!(
            c.probe(&Key::MAX, SimTime::ZERO),
            CacheOutcome::Hit { node: 3 }
        );
        assert_eq!(c.probe(&k(500), SimTime::ZERO), CacheOutcome::Miss);
    }

    #[test]
    fn invalidate_node_drops_its_ranges() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        c.insert(r(30, 40), 1, SimTime::ZERO);
        c.insert(r(50, 60), 2, SimTime::ZERO);
        c.invalidate_node(1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.probe(&k(15), SimTime::ZERO), CacheOutcome::Miss);
        assert_eq!(
            c.probe(&k(55), SimTime::ZERO),
            CacheOutcome::Hit { node: 2 }
        );
    }

    #[test]
    fn peek_does_not_count() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        assert_eq!(c.peek(&k(15), SimTime::ZERO), Some(1));
        assert_eq!(c.peek(&k(99), SimTime::ZERO), None);
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        let _ = c.probe(&k(15), SimTime::ZERO);
        let _ = c.probe(&k(95), SimTime::ZERO);
        c.reset_stats();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.miss_rate(), 0.0);
        assert_eq!(c.len(), 1, "entries survive a stats reset");
    }

    #[test]
    fn traced_probe_records_tiered_outcomes() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        let sink = SharedSink::memory(0);
        let hit = c.probe_traced(&k(15), SimTime::from_secs(2), 4, &sink);
        let miss = c.probe_traced(&k(99), SimTime::from_secs(3), 4, &sink);
        assert_eq!(hit, CacheOutcome::Hit { node: 1 });
        assert_eq!(miss, CacheOutcome::Miss);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        match &events[0] {
            TraceEvent::CacheProbe {
                t_us,
                user,
                tier,
                result,
                ..
            } => {
                assert_eq!(*t_us, 2_000_000);
                assert_eq!(*user, 4);
                assert_eq!(*tier, CacheTier::Lookup);
                assert_eq!(*result, CacheResult::Hit);
            }
            other => panic!("expected CacheProbe, got {other:?}"),
        }
        assert!(matches!(
            &events[1],
            TraceEvent::CacheProbe {
                result: CacheResult::Miss,
                ..
            }
        ));
        // Null sink: same outcomes, no events, stats still counted.
        let null = SharedSink::null();
        let _ = c.probe_traced(&k(15), SimTime::from_secs(4), 0, &null);
        assert!(null.drain().is_empty());
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn full_range_overlaps_everything() {
        let mut c = LookupCache::with_default_ttl();
        c.insert(r(10, 20), 1, SimTime::ZERO);
        c.insert(KeyRange::full(), 9, SimTime::ZERO);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.probe(&k(999), SimTime::ZERO),
            CacheOutcome::Hit { node: 9 }
        );
    }
}
