//! Per-node block storage.

use d2_obs::Registry;
use d2_sim::SimTime;
use d2_types::{Key, KeyRange};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a node physically holds for a key.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// Real block bytes (live deployments and file-system tests).
    Data(Vec<u8>),
    /// Size-only placeholder for large-scale simulation, where block
    /// contents are irrelevant but byte accounting matters.
    Size(u32),
    /// One erasure-coded fragment of a block (`d2-ec`): `ceil(len / k)`
    /// bytes of a `(k, n)` code word. Like [`Payload::Size`] this is a
    /// size-only placeholder at simulation scale, but it carries the
    /// fragment's code-word position and write generation so repair and
    /// decode logic can reason about which fragments survive.
    Fragment {
        /// Position in the code word (`0..n`).
        index: u8,
        /// Write generation; fragments of different generations of the
        /// same key never combine.
        generation: u64,
        /// Fragment payload size in bytes.
        len: u32,
    },
    /// A block *pointer* (Section 6): the data still lives on `holder`;
    /// this node will fetch it once the pointer is older than the pointer
    /// stabilization time.
    Pointer {
        /// Node index that actually holds the block.
        holder: usize,
        /// When the pointer was installed.
        since: SimTime,
        /// Size of the pointed-to block.
        len: u32,
    },
}

impl Payload {
    /// Logical size of the block in bytes (pointers report the size of the
    /// block they stand for, since that is what must eventually move).
    pub fn len(&self) -> u32 {
        match self {
            Payload::Data(d) => d.len() as u32,
            Payload::Size(n) => *n,
            Payload::Fragment { len, .. } => *len,
            Payload::Pointer { len, .. } => *len,
        }
    }

    /// Whether this entry is a pointer rather than real data.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Payload::Pointer { .. })
    }

    /// Whether this entry is an erasure-coded fragment.
    pub fn is_fragment(&self) -> bool {
        matches!(self, Payload::Fragment { .. })
    }

    /// Whether the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A stored block plus its lifecycle timestamps.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredBlock {
    /// The block's contents (or placeholder / pointer).
    pub payload: Payload,
    /// When the block arrived at this node.
    pub stored_at: SimTime,
    /// Delayed-removal deadline set by `remove(key, delay)` (D2-FS delays
    /// removals by 30 s so stale-by-up-to-30 s readers still succeed).
    pub remove_at: Option<SimTime>,
    /// TTL deadline: blocks are auto-removed if not refreshed, covering
    /// removal messages lost to partitions (Section 3).
    pub expires_at: Option<SimTime>,
}

impl StoredBlock {
    /// Whether the block should be garbage-collected at `now`.
    pub fn is_dead(&self, now: SimTime) -> bool {
        self.remove_at.is_some_and(|t| now >= t) || self.expires_at.is_some_and(|t| now >= t)
    }
}

/// The block store of a single node: an ordered map from key to block,
/// supporting the range queries that load balancing and migration need.
///
/// # Examples
///
/// ```
/// use d2_store::{NodeStore, Payload};
/// use d2_sim::SimTime;
/// use d2_types::Key;
///
/// let mut store = NodeStore::new();
/// store.put(Key::from_u64(7), Payload::Size(8192), SimTime::ZERO);
/// assert!(store.contains(&Key::from_u64(7)));
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NodeStore {
    blocks: BTreeMap<Key, StoredBlock>,
    bytes: u64,
    pointer_bytes: u64,
    fragment_bytes: u64,
    /// Keys currently stored as pointers (kept indexed so pointer scans
    /// cost O(#pointers), not O(#blocks)).
    pointers: std::collections::BTreeSet<Key>,
}

/// What one [`NodeStore::gc`] pass reclaimed, broken down by payload
/// kind so the `store.*` metrics can report fragment bytes separately
/// from whole blocks (lazy erasure repair budgets are denominated in
/// bytes, so "how many bytes did GC free" must be answerable per kind).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Keys removed, in key order.
    pub keys: Vec<Key>,
    /// Bytes reclaimed from whole blocks (`Data` / `Size`).
    pub block_bytes: u64,
    /// Bytes reclaimed from erasure-coded fragments.
    pub fragment_bytes: u64,
    /// Logical bytes released by dropping pointers.
    pub pointer_bytes: u64,
}

impl GcReport {
    /// Whether the pass removed anything.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl NodeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        NodeStore::default()
    }

    /// Number of blocks held (including pointers).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total logical bytes held (pointers count the pointed-to size).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Physical bytes actually stored here: logical bytes minus the sizes
    /// represented only by pointers. This is what capacity checks use —
    /// a pointer occupies negligible space (Section 6: "assuming a small
    /// amount of space is always left over for pointers").
    pub fn data_bytes(&self) -> u64 {
        self.bytes - self.pointer_bytes
    }

    /// Bytes held as erasure-coded fragments (a subset of
    /// [`NodeStore::data_bytes`]: fragments are physically stored, but
    /// repair and ablation accounting track them separately from whole
    /// blocks).
    pub fn fragment_bytes(&self) -> u64 {
        self.fragment_bytes
    }

    /// Adds `payload`'s bytes to the per-kind accounting and indexes.
    fn account_add(&mut self, key: Key, payload: &Payload) {
        self.bytes += payload.len() as u64;
        if payload.is_pointer() {
            self.pointer_bytes += payload.len() as u64;
            self.pointers.insert(key);
        } else {
            self.pointers.remove(&key);
        }
        if payload.is_fragment() {
            self.fragment_bytes += payload.len() as u64;
        }
    }

    /// Removes a displaced `payload`'s bytes from the accounting (the
    /// pointer index is maintained by [`NodeStore::account_add`] /
    /// the removal paths, which know whether the key goes away).
    fn account_sub(&mut self, payload: &Payload) {
        self.bytes -= payload.len() as u64;
        if payload.is_pointer() {
            self.pointer_bytes -= payload.len() as u64;
        }
        if payload.is_fragment() {
            self.fragment_bytes -= payload.len() as u64;
        }
    }

    /// Inserts or replaces a block. Returns the previous entry, if any.
    pub fn put(&mut self, key: Key, payload: Payload, now: SimTime) -> Option<StoredBlock> {
        self.account_add(key, &payload);
        let old = self.blocks.insert(
            key,
            StoredBlock {
                payload,
                stored_at: now,
                remove_at: None,
                expires_at: None,
            },
        );
        if let Some(ref o) = old {
            self.account_sub(&o.payload);
        }
        old
    }

    /// Inserts a block with a TTL.
    pub fn put_with_ttl(&mut self, key: Key, payload: Payload, now: SimTime, ttl: SimTime) {
        self.put(key, payload, now);
        if let Some(b) = self.blocks.get_mut(&key) {
            b.expires_at = Some(now + ttl);
        }
    }

    /// Looks up a block.
    pub fn get(&self, key: &Key) -> Option<&StoredBlock> {
        self.blocks.get(key)
    }

    /// Whether the key is present.
    pub fn contains(&self, key: &Key) -> bool {
        self.blocks.contains_key(key)
    }

    /// Immediately removes a block, returning it.
    pub fn remove_now(&mut self, key: &Key) -> Option<StoredBlock> {
        let old = self.blocks.remove(key);
        if let Some(ref o) = old {
            self.account_sub(&o.payload);
            if o.payload.is_pointer() {
                self.pointers.remove(key);
            }
        }
        old
    }

    /// Schedules removal after `delay` — the `remove(key, delay)`
    /// operation of Section 3. The block stays readable until then.
    pub fn remove_after(&mut self, key: &Key, now: SimTime, delay: SimTime) -> bool {
        match self.blocks.get_mut(key) {
            Some(b) => {
                b.remove_at = Some(now + delay);
                true
            }
            None => false,
        }
    }

    /// Refreshes a block's TTL (the "user-defined TTL that can be
    /// refreshed").
    pub fn refresh_ttl(&mut self, key: &Key, now: SimTime, ttl: SimTime) -> bool {
        match self.blocks.get_mut(key) {
            Some(b) => {
                b.expires_at = Some(now + ttl);
                true
            }
            None => false,
        }
    }

    /// Garbage-collects blocks whose delayed removal or TTL deadline has
    /// passed. Returns the removed keys *and* the reclaimed bytes broken
    /// down by payload kind — fragment bytes used to vanish invisibly
    /// here, which made erasure-coded space accounting unauditable.
    /// Quick removal matters for locality: dead blocks fragment live
    /// data (Section 3).
    pub fn gc(&mut self, now: SimTime) -> GcReport {
        let dead: Vec<Key> = self
            .blocks
            .iter()
            .filter(|(_, b)| b.is_dead(now))
            .map(|(k, _)| *k)
            .collect();
        let mut report = GcReport::default();
        for k in dead {
            let Some(old) = self.remove_now(&k) else {
                continue;
            };
            match old.payload {
                Payload::Data(_) | Payload::Size(_) => {
                    report.block_bytes += old.payload.len() as u64
                }
                Payload::Fragment { .. } => report.fragment_bytes += old.payload.len() as u64,
                Payload::Pointer { .. } => report.pointer_bytes += old.payload.len() as u64,
            }
            report.keys.push(k);
        }
        report
    }

    /// Runs [`NodeStore::gc`] and publishes what it reclaimed to the
    /// `store.*` metrics: `store.gc_blocks` counts removed entries,
    /// `store.gc_block_bytes` / `store.gc_fragment_bytes` /
    /// `store.gc_pointer_bytes` the reclaimed bytes per payload kind.
    pub fn gc_observed(&mut self, now: SimTime, reg: &mut Registry) -> GcReport {
        let report = self.gc(now);
        if !report.is_empty() {
            reg.add("store.gc_blocks", report.keys.len() as u64);
            reg.add("store.gc_block_bytes", report.block_bytes);
            reg.add("store.gc_fragment_bytes", report.fragment_bytes);
            reg.add("store.gc_pointer_bytes", report.pointer_bytes);
        }
        report
    }

    /// Iterates keys inside `range` (which may wrap).
    pub fn keys_in(&self, range: &KeyRange) -> Vec<Key> {
        if range.is_full() {
            return self.blocks.keys().copied().collect();
        }
        let start = *range.start();
        let end = *range.end();
        if start < end {
            self.blocks
                .range((
                    std::ops::Bound::Excluded(start),
                    std::ops::Bound::Included(end),
                ))
                .map(|(k, _)| *k)
                .collect()
        } else {
            // Wrapping: (start, MAX] ∪ [MIN, end].
            self.blocks
                .range((std::ops::Bound::Excluded(start), std::ops::Bound::Unbounded))
                .map(|(k, _)| *k)
                .chain(self.blocks.range(..=end).map(|(k, _)| *k))
                .collect()
        }
    }

    /// Number of blocks inside `range` (no allocation; called on every
    /// balance probe).
    pub fn count_in(&self, range: &KeyRange) -> u64 {
        if range.is_full() {
            return self.blocks.len() as u64;
        }
        let start = *range.start();
        let end = *range.end();
        if start < end {
            self.blocks
                .range((
                    std::ops::Bound::Excluded(start),
                    std::ops::Bound::Included(end),
                ))
                .count() as u64
        } else {
            (self
                .blocks
                .range((std::ops::Bound::Excluded(start), std::ops::Bound::Unbounded))
                .count()
                + self.blocks.range(..=end).count()) as u64
        }
    }

    /// Total bytes of blocks inside `range`.
    pub fn bytes_in(&self, range: &KeyRange) -> u64 {
        self.keys_in(range)
            .iter()
            .filter_map(|k| self.blocks.get(k))
            .map(|b| b.payload.len() as u64)
            .sum()
    }

    /// The key `m` such that half of the blocks in `range` have keys ≤ `m`
    /// — the split point the load balancer uses (Section 6). Returns
    /// `None` with fewer than 2 blocks in range.
    pub fn split_key_in(&self, range: &KeyRange) -> Option<Key> {
        let keys = self.keys_in(range);
        if keys.len() < 2 {
            return None;
        }
        Some(keys[keys.len() / 2 - 1])
    }

    /// Removes and returns all blocks inside `range` (migration transfer).
    pub fn take_range(&mut self, range: &KeyRange) -> Vec<(Key, StoredBlock)> {
        self.keys_in(range)
            .into_iter()
            .filter_map(|k| self.remove_now(&k).map(|b| (k, b)))
            .collect()
    }

    /// Inserts pre-built blocks (migration receive).
    pub fn absorb(&mut self, blocks: Vec<(Key, StoredBlock)>) {
        for (k, b) in blocks {
            self.account_add(k, &b.payload);
            if let Some(old) = self.blocks.insert(k, b) {
                self.account_sub(&old.payload);
            }
        }
    }

    /// Pointers installed before `cutoff` — due for resolution (fetch the
    /// real block from the holder) once they have outlived the pointer
    /// stabilization time.
    pub fn stale_pointers(&self, cutoff: SimTime) -> Vec<(Key, usize, u32)> {
        self.pointers
            .iter()
            .filter_map(|k| match self.blocks.get(k).map(|b| &b.payload) {
                Some(&Payload::Pointer { holder, since, len }) if since <= cutoff => {
                    Some((*k, holder, len))
                }
                _ => None,
            })
            .collect()
    }

    /// All keys currently stored as pointers (O(#pointers)).
    pub fn pointer_keys(&self) -> Vec<Key> {
        self.pointers.iter().copied().collect()
    }

    /// Number of pointer entries held.
    pub fn pointer_count(&self) -> usize {
        self.pointers.len()
    }

    /// Iterates all `(key, block)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &StoredBlock)> {
        self.blocks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(v: u64) -> Key {
        Key::from_u64_ordered(v)
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let mut s = NodeStore::new();
        s.put(k(1), Payload::Data(vec![1, 2, 3]), SimTime::ZERO);
        assert_eq!(s.get(&k(1)).unwrap().payload, Payload::Data(vec![1, 2, 3]));
        assert_eq!(s.bytes(), 3);
        let old = s.remove_now(&k(1)).unwrap();
        assert_eq!(old.payload.len(), 3);
        assert_eq!(s.bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn overwrite_adjusts_bytes() {
        let mut s = NodeStore::new();
        s.put(k(1), Payload::Size(100), SimTime::ZERO);
        s.put(k(1), Payload::Size(40), SimTime::ZERO);
        assert_eq!(s.bytes(), 40);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delayed_removal_keeps_block_readable() {
        let mut s = NodeStore::new();
        s.put(k(1), Payload::Size(10), SimTime::ZERO);
        assert!(s.remove_after(&k(1), SimTime::ZERO, SimTime::from_secs(30)));
        // Still readable before the deadline (stale readers succeed).
        assert!(s.gc(SimTime::from_secs(29)).is_empty());
        assert!(s.contains(&k(1)));
        // Gone at the deadline.
        assert_eq!(s.gc(SimTime::from_secs(30)).keys, vec![k(1)]);
        assert!(!s.contains(&k(1)));
    }

    #[test]
    fn ttl_expiry() {
        let mut s = NodeStore::new();
        s.put_with_ttl(
            k(2),
            Payload::Size(10),
            SimTime::ZERO,
            SimTime::from_secs(60),
        );
        assert!(s.gc(SimTime::from_secs(59)).is_empty());
        // Refresh extends life.
        assert!(s.refresh_ttl(&k(2), SimTime::from_secs(59), SimTime::from_secs(60)));
        assert!(s.gc(SimTime::from_secs(100)).is_empty());
        assert_eq!(s.gc(SimTime::from_secs(119)).keys, vec![k(2)]);
    }

    #[test]
    fn remove_after_on_missing_key_is_false() {
        let mut s = NodeStore::new();
        assert!(!s.remove_after(&k(9), SimTime::ZERO, SimTime::from_secs(1)));
        assert!(!s.refresh_ttl(&k(9), SimTime::ZERO, SimTime::from_secs(1)));
    }

    #[test]
    fn keys_in_simple_range() {
        let mut s = NodeStore::new();
        for v in [10, 20, 30, 40] {
            s.put(k(v), Payload::Size(1), SimTime::ZERO);
        }
        let r = KeyRange::new(k(10), k(30));
        assert_eq!(s.keys_in(&r), vec![k(20), k(30)]); // start exclusive
        assert_eq!(s.count_in(&r), 2);
    }

    #[test]
    fn keys_in_wrapping_range() {
        let mut s = NodeStore::new();
        for v in [10, 20, 30, 40] {
            s.put(k(v), Payload::Size(1), SimTime::ZERO);
        }
        let r = KeyRange::new(k(35), k(15));
        assert_eq!(s.keys_in(&r), vec![k(40), k(10)]);
    }

    #[test]
    fn keys_in_full_range() {
        let mut s = NodeStore::new();
        for v in [1, 2, 3] {
            s.put(k(v), Payload::Size(1), SimTime::ZERO);
        }
        assert_eq!(s.keys_in(&KeyRange::full()).len(), 3);
    }

    #[test]
    fn split_key_halves_range() {
        let mut s = NodeStore::new();
        for v in 1..=10 {
            s.put(k(v), Payload::Size(1), SimTime::ZERO);
        }
        let r = KeyRange::full();
        let m = s.split_key_in(&r).unwrap();
        assert_eq!(m, k(5));
        // Fewer than 2 blocks: no split.
        let tiny = KeyRange::new(k(9), k(10));
        assert!(s.split_key_in(&tiny).is_none());
    }

    #[test]
    fn take_range_moves_blocks_and_bytes() {
        let mut a = NodeStore::new();
        for v in 1..=6 {
            a.put(k(v), Payload::Size(10), SimTime::ZERO);
        }
        let moved = a.take_range(&KeyRange::new(k(2), k(4)));
        assert_eq!(moved.len(), 2); // keys 3, 4
        assert_eq!(a.len(), 4);
        assert_eq!(a.bytes(), 40);
        let mut b = NodeStore::new();
        b.absorb(moved);
        assert_eq!(b.len(), 2);
        assert_eq!(b.bytes(), 20);
    }

    #[test]
    fn pointer_lifecycle() {
        let mut s = NodeStore::new();
        s.put(
            k(5),
            Payload::Pointer {
                holder: 3,
                since: SimTime::from_secs(10),
                len: 8192,
            },
            SimTime::from_secs(10),
        );
        assert!(s.get(&k(5)).unwrap().payload.is_pointer());
        assert_eq!(s.bytes(), 8192); // pointers carry logical size
        assert_eq!(s.data_bytes(), 0); // ... but occupy no physical space
                                       // Not stale before the stabilization time.
        assert!(s.stale_pointers(SimTime::from_secs(9)).is_empty());
        let stale = s.stale_pointers(SimTime::from_secs(10));
        assert_eq!(stale, vec![(k(5), 3, 8192)]);
        assert_eq!(s.pointer_keys(), vec![k(5)]);
        // Resolving: replace pointer with data.
        s.put(k(5), Payload::Size(8192), SimTime::from_secs(20));
        assert!(s.pointer_keys().is_empty());
        assert_eq!(s.data_bytes(), 8192);
    }

    #[test]
    fn payload_len_and_flags() {
        assert_eq!(Payload::Data(vec![0; 5]).len(), 5);
        assert_eq!(Payload::Size(9).len(), 9);
        assert_eq!(
            Payload::Pointer {
                holder: 0,
                since: SimTime::ZERO,
                len: 7
            }
            .len(),
            7
        );
        assert!(Payload::Data(vec![]).is_empty());
        assert!(!Payload::Size(1).is_empty());
    }

    #[test]
    fn fragment_bytes_tracked_separately() {
        let mut s = NodeStore::new();
        s.put(k(1), Payload::Size(100), SimTime::ZERO);
        s.put(
            k(2),
            Payload::Fragment {
                index: 3,
                generation: 1,
                len: 40,
            },
            SimTime::ZERO,
        );
        assert_eq!(s.bytes(), 140);
        assert_eq!(s.data_bytes(), 140); // fragments are physical bytes
        assert_eq!(s.fragment_bytes(), 40);
        // Overwriting a fragment with a whole block releases its share.
        s.put(k(2), Payload::Size(60), SimTime::ZERO);
        assert_eq!(s.fragment_bytes(), 0);
        assert_eq!(s.bytes(), 160);
        // ... and the reverse direction claims it back.
        s.put(
            k(1),
            Payload::Fragment {
                index: 0,
                generation: 2,
                len: 25,
            },
            SimTime::ZERO,
        );
        assert_eq!(s.fragment_bytes(), 25);
        s.remove_now(&k(1));
        assert_eq!(s.fragment_bytes(), 0);
        assert_eq!(s.bytes(), 60);
    }

    #[test]
    fn gc_reports_reclaimed_fragment_bytes_in_store_metrics() {
        // Regression: gc used to return only the removed keys, so
        // reclaimed fragment bytes never reached the store.* metrics.
        let mut s = NodeStore::new();
        let mut reg = Registry::new();
        s.put(k(1), Payload::Size(100), SimTime::ZERO);
        s.put(
            k(2),
            Payload::Fragment {
                index: 1,
                generation: 0,
                len: 30,
            },
            SimTime::ZERO,
        );
        s.put(
            k(3),
            Payload::Fragment {
                index: 2,
                generation: 0,
                len: 30,
            },
            SimTime::ZERO,
        );
        s.put(
            k(4),
            Payload::Pointer {
                holder: 7,
                since: SimTime::ZERO,
                len: 500,
            },
            SimTime::ZERO,
        );
        for v in 1..=4 {
            s.remove_after(&k(v), SimTime::ZERO, SimTime::from_secs(10));
        }
        // Nothing due yet: no counter movement.
        let early = s.gc_observed(SimTime::from_secs(5), &mut reg);
        assert!(early.is_empty());
        assert_eq!(reg.counter("store.gc_blocks"), 0);

        let report = s.gc_observed(SimTime::from_secs(10), &mut reg);
        assert_eq!(report.keys.len(), 4);
        assert_eq!(report.block_bytes, 100);
        assert_eq!(report.fragment_bytes, 60);
        assert_eq!(report.pointer_bytes, 500);
        assert_eq!(reg.counter("store.gc_blocks"), 4);
        assert_eq!(reg.counter("store.gc_block_bytes"), 100);
        assert_eq!(reg.counter("store.gc_fragment_bytes"), 60);
        assert_eq!(reg.counter("store.gc_pointer_bytes"), 500);
        assert_eq!(s.bytes(), 0);
        assert_eq!(s.fragment_bytes(), 0);

        // A second pass is a no-op: deltas, not re-counts.
        s.gc_observed(SimTime::from_secs(11), &mut reg);
        assert_eq!(reg.counter("store.gc_blocks"), 4);
        assert_eq!(reg.counter("store.gc_fragment_bytes"), 60);
    }

    #[test]
    fn bytes_in_range() {
        let mut s = NodeStore::new();
        s.put(k(1), Payload::Size(100), SimTime::ZERO);
        s.put(k(2), Payload::Size(200), SimTime::ZERO);
        s.put(k(3), Payload::Size(400), SimTime::ZERO);
        assert_eq!(s.bytes_in(&KeyRange::new(k(1), k(2))), 200);
        assert_eq!(s.bytes_in(&KeyRange::full()), 700);
    }
}
