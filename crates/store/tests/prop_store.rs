//! Property tests for the per-node store and lookup cache.

use d2_sim::SimTime;
use d2_store::{CacheOutcome, LookupCache, NodeStore, Payload};
use d2_types::{Key, KeyRange};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Put(u16, u16),
    RemoveNow(u16),
    RemoveAfter(u16, u16),
    RefreshTtl(u16, u16),
    Gc,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u16>(), 1u16..=2048).prop_map(|(k, l)| Op::Put(k, l)),
        1 => any::<u16>().prop_map(Op::RemoveNow),
        2 => (any::<u16>(), 1u16..600).prop_map(|(k, d)| Op::RemoveAfter(k, d)),
        1 => (any::<u16>(), 1u16..600).prop_map(|(k, d)| Op::RefreshTtl(k, d)),
        2 => Just(Op::Gc),
    ]
}

fn key(k: u16) -> Key {
    Key::from_u64_ordered(k as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store's byte counter always equals the sum of stored payload
    /// lengths, and gc removes exactly the due blocks.
    #[test]
    fn store_accounting_is_exact(ops in prop::collection::vec(arb_op(), 1..80)) {
        #[derive(Clone, Copy)]
        struct Entry {
            len: u32,
            remove_at: Option<SimTime>,
            expires_at: Option<SimTime>,
        }
        impl Entry {
            fn dead(&self, now: SimTime) -> bool {
                self.remove_at.is_some_and(|t| now >= t)
                    || self.expires_at.is_some_and(|t| now >= t)
            }
        }
        let mut store = NodeStore::new();
        let mut model: BTreeMap<Key, Entry> = BTreeMap::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            now += SimTime::from_secs(10);
            match op {
                Op::Put(k, len) => {
                    store.put(key(k), Payload::Size(len as u32), now);
                    model.insert(key(k), Entry { len: len as u32, remove_at: None, expires_at: None });
                }
                Op::RemoveNow(k) => {
                    let got = store.remove_now(&key(k));
                    prop_assert_eq!(got.is_some(), model.remove(&key(k)).is_some());
                }
                Op::RemoveAfter(k, d) => {
                    let due = now + SimTime::from_secs(d as u64);
                    let ok = store.remove_after(&key(k), now, SimTime::from_secs(d as u64));
                    if let Some(e) = model.get_mut(&key(k)) {
                        prop_assert!(ok);
                        e.remove_at = Some(due);
                    } else {
                        prop_assert!(!ok);
                    }
                }
                Op::RefreshTtl(k, d) => {
                    let ok = store.refresh_ttl(&key(k), now, SimTime::from_secs(d as u64));
                    if let Some(e) = model.get_mut(&key(k)) {
                        prop_assert!(ok);
                        e.expires_at = Some(now + SimTime::from_secs(d as u64));
                    } else {
                        prop_assert!(!ok);
                    }
                }
                Op::Gc => {
                    let dead = store.gc(now).keys;
                    for k in &dead {
                        let e = model.remove(k);
                        prop_assert!(e.is_some(), "gc removed an untracked key");
                        prop_assert!(e.unwrap().dead(now));
                    }
                    for (k, e) in &model {
                        prop_assert!(!e.dead(now) || !store.contains(k), "overdue {k} survived gc");
                    }
                    model.retain(|_, e| !e.dead(now));
                }
            }
            let expect: u64 = model.values().map(|e| e.len as u64).sum();
            prop_assert_eq!(store.bytes(), expect, "byte counter drifted");
            prop_assert_eq!(store.len(), model.len());
        }
    }

    /// take_range + absorb moves exactly the blocks in the range,
    /// conserving total count and bytes.
    #[test]
    fn migration_conserves_blocks(
        keys in prop::collection::btree_set(any::<u16>(), 1..64),
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let mut src = NodeStore::new();
        for &k in &keys {
            src.put(key(k), Payload::Size(8), SimTime::ZERO);
        }
        let range = KeyRange::new(key(a), key(b));
        let total = src.len();
        let total_bytes = src.bytes();
        let moved = src.take_range(&range);
        let mut dst = NodeStore::new();
        dst.absorb(moved);
        prop_assert_eq!(src.len() + dst.len(), total);
        prop_assert_eq!(src.bytes() + dst.bytes(), total_bytes);
        // Partition correctness.
        for &k in &keys {
            let kk = key(k);
            if range.contains(&kk) && a != b {
                prop_assert!(dst.contains(&kk));
                prop_assert!(!src.contains(&kk));
            }
        }
    }

    /// Lookup-cache: after inserting disjoint live ranges, probing any key
    /// inside a range hits the right node; overlapping inserts supersede.
    #[test]
    fn cache_hits_are_always_current(
        ranges in prop::collection::vec((any::<u16>(), any::<u16>(), 0usize..16), 1..12),
        probes in prop::collection::vec(any::<u16>(), 1..24),
    ) {
        let mut cache = LookupCache::new(SimTime::from_secs(1_000_000));
        let mut inserted: Vec<(KeyRange, usize)> = Vec::new();
        for (a, b, node) in ranges {
            if a == b {
                continue;
            }
            let r = KeyRange::new(key(a), key(b));
            inserted.retain(|(old, _)| {
                // Mirror the cache's overlap eviction.
                !(old.contains(r.end()) || r.contains(old.end()))
            });
            inserted.push((r, node));
            cache.insert(r, node, SimTime::ZERO);
        }
        for p in probes {
            let k = key(p);
            let expect = inserted.iter().rev().find(|(r, _)| r.contains(&k)).map(|(_, n)| *n);
            match cache.probe(&k, SimTime::ZERO) {
                CacheOutcome::Hit { node } => prop_assert_eq!(Some(node), expect),
                CacheOutcome::Miss => prop_assert_eq!(expect, None),
            }
        }
    }
}
