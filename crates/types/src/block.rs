//! Block naming and size constants shared across the workspace.

use crate::encoding;
use crate::encoding::{PathSlots, VolumeId};
use crate::hash::ContentHash;
use crate::key::Key;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum block size: "All blocks are at most 8 KB in size" (Section 3).
pub const BLOCK_SIZE: usize = 8 * 1024;

/// Files whose data fits in this many bytes are stored inline in the parent
/// metadata block ("when the amount of file data in a data block is small
/// enough, D2-FS stores the data directly in the parent metadata block").
pub const INLINE_DATA_MAX: usize = 512;

/// What a block contains, for accounting and assertions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BlockKind {
    /// The mutable, signed volume root.
    Root,
    /// A directory metadata block.
    Directory,
    /// A file inode (block list + content hashes).
    Inode,
    /// An 8 KB (max) file data block.
    Data,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BlockKind::Root => "root",
            BlockKind::Directory => "directory",
            BlockKind::Inode => "inode",
            BlockKind::Data => "data",
        };
        f.write_str(s)
    }
}

/// The logical, encoding-independent name of a block.
///
/// A `BlockName` carries everything needed to derive the block's DHT key
/// under *any* of the three encodings compared in the paper, so the same
/// workload can be replayed against D2, the traditional DHT, and the
/// traditional-file DHT.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BlockName {
    /// Volume the block belongs to.
    pub volume: VolumeId,
    /// Locality-preserving path position (for the D2 encoding).
    pub slots: PathSlots,
    /// Full path string (for the hashed baseline encodings).
    pub path: String,
    /// Block number within the file (0 = metadata block).
    pub block_no: u64,
    /// Version of an overwritten block.
    pub version: u32,
    /// What the block holds.
    pub kind: BlockKind,
}

impl BlockName {
    /// The D2 locality-preserving key (Figure 4).
    pub fn d2_key(&self) -> Key {
        encoding::d2_key(&self.volume, &self.slots, self.block_no, self.version)
    }

    /// The traditional per-block hashed key (CFS-style).
    pub fn traditional_key(&self) -> Key {
        encoding::traditional_key(&self.volume, &self.path, self.block_no, self.version)
    }

    /// The traditional-file key: hashed per-file placement (PAST-style).
    pub fn traditional_file_key(&self) -> Key {
        encoding::traditional_file_key(&self.volume, &self.path, self.block_no, self.version)
    }
}

/// Which of the paper's three compared systems is in effect; decides how a
/// [`BlockName`] maps to a DHT [`Key`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SystemKind {
    /// D2: locality-preserving keys (Figure 4) + dynamic load balancing.
    D2,
    /// Traditional DHT: per-block hashed keys + consistent hashing (CFS).
    Traditional,
    /// Traditional-file DHT: per-file hashed placement (PAST-style), all
    /// of a file's blocks on one replica group.
    TraditionalFile,
}

impl SystemKind {
    /// The DHT key for `name` under this system's encoding.
    pub fn key_of(&self, name: &BlockName) -> Key {
        match self {
            SystemKind::D2 => name.d2_key(),
            SystemKind::Traditional => name.traditional_key(),
            SystemKind::TraditionalFile => name.traditional_file_key(),
        }
    }

    /// Whether this system runs the active load balancer (only D2 needs
    /// it; the baselines rely on consistent hashing).
    pub fn balances_actively(&self) -> bool {
        matches!(self, SystemKind::D2)
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::D2 => "d2",
            SystemKind::Traditional => "traditional",
            SystemKind::TraditionalFile => "traditional-file",
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A `(key, content-hash, length)` pointer stored inside metadata blocks,
/// enabling integrity verification now that keys are not content hashes
/// (Section 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct BlockPointerEntry {
    /// DHT key of the pointed-to block.
    pub key: Key,
    /// Content hash for integrity verification.
    pub hash: ContentHash,
    /// Length in bytes of the pointed-to block.
    pub len: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::SlotAllocator;

    fn name(path: &str, block_no: u64) -> BlockName {
        let mut slots = PathSlots::root();
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            slots = slots.child(SlotAllocator::slot_for_name(seg), seg);
        }
        BlockName {
            volume: VolumeId::from_name("v"),
            slots,
            path: path.to_string(),
            block_no,
            version: 0,
            kind: BlockKind::Data,
        }
    }

    #[test]
    fn three_encodings_differ() {
        let n = name("/a/b.txt", 3);
        let d2 = n.d2_key();
        let t = n.traditional_key();
        let tf = n.traditional_file_key();
        assert_ne!(d2, t);
        assert_ne!(t, tf);
        assert_ne!(d2, tf);
    }

    #[test]
    fn d2_keys_of_same_file_adjacent_traditional_not() {
        let a = name("/a/b.txt", 0).d2_key();
        let b = name("/a/b.txt", 1).d2_key();
        let c = name("/a/zzz.dat", 0).d2_key();
        // a and b differ only in trailer bytes; c differs earlier.
        assert_eq!(a.as_bytes()[..44], b.as_bytes()[..44]);
        assert_ne!(a.as_bytes()[..44], c.as_bytes()[..44]);
    }

    #[test]
    fn block_kind_display() {
        assert_eq!(BlockKind::Root.to_string(), "root");
        assert_eq!(BlockKind::Data.to_string(), "data");
    }
}
