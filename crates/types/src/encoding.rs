//! Locality-preserving and baseline key encodings (paper Section 4.2, Figure 4).
//!
//! The D2 key layout packs, into one 64-byte [`Key`]:
//!
//! | bytes   | contents                               |
//! |---------|----------------------------------------|
//! | 0..20   | volume id                              |
//! | 20..44  | twelve 2-byte directory/file slots     |
//! | 44..52  | hash of the path remainder (levels >12)|
//! | 52..60  | block number within the file           |
//! | 60..64  | version hash                           |
//!
//! Because the slot bytes sit above the block-number bytes, a preorder
//! traversal of the directory tree maps to increasing key order: blocks of
//! one file are contiguous, files in one directory are contiguous, and a
//! directory's subtree occupies a contiguous arc of the ring.

use crate::hash::sha256;
use crate::key::{Key, KEY_BYTES};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Number of path levels encoded directly as 2-byte slots (Figure 4).
pub const DIR_SLOT_LEVELS: usize = 12;

const VOL_BYTES: usize = 20;
const SLOT_OFF: usize = VOL_BYTES; // 20
const REM_OFF: usize = SLOT_OFF + 2 * DIR_SLOT_LEVELS; // 44
const BLOCK_OFF: usize = REM_OFF + 8; // 52
const VER_OFF: usize = BLOCK_OFF + 8; // 60

/// A 20-byte volume identifier (derived from the publisher's key in the
/// paper; derived from the volume name here).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct VolumeId(pub [u8; VOL_BYTES]);

impl VolumeId {
    /// Derives a volume id from a human-readable name.
    pub fn from_name(name: &str) -> Self {
        let h = sha256(name.as_bytes());
        let mut v = [0u8; VOL_BYTES];
        v.copy_from_slice(&h.as_bytes()[..VOL_BYTES]);
        VolumeId(v)
    }
}

impl fmt::Debug for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vol(")?;
        for b in &self.0[..4] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

/// The encoded position of a file or directory in the name space: up to
/// [`DIR_SLOT_LEVELS`] 2-byte slots plus a rolling hash of any deeper path
/// components.
///
/// Construct the root with [`PathSlots::root`] and descend with
/// [`PathSlots::child`]. Slots are 1-based so that a directory's own
/// metadata (slot suffix `0`) sorts before all of its children — this gives
/// exact preorder ordering.
///
/// # Examples
///
/// ```
/// use d2_types::PathSlots;
///
/// let root = PathSlots::root();
/// let docs = root.child(1, "docs");
/// let file = docs.child(3, "notes.txt");
/// assert_eq!(file.depth(), 2);
/// assert!(root.is_ancestor_of(&file));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSlots {
    slots: [u16; DIR_SLOT_LEVELS],
    depth: u8,
    /// Rolling hash of path components beyond `DIR_SLOT_LEVELS` (0 if none).
    remainder: u64,
    /// Total path depth including components folded into `remainder`.
    full_depth: u16,
}

impl PathSlots {
    /// The volume root (depth 0).
    pub fn root() -> Self {
        PathSlots {
            slots: [0; DIR_SLOT_LEVELS],
            depth: 0,
            remainder: 0,
            full_depth: 0,
        }
    }

    /// Descends one level using `slot` (must be nonzero) as the 2-byte
    /// value assigned by the parent directory. `name` is only used once the
    /// 12 slot levels are exhausted, at which point it is folded into the
    /// remainder hash (locality is lost for such deep paths, <1% of files
    /// in the paper's traces).
    ///
    /// # Panics
    ///
    /// Panics if `slot == 0` (reserved for "no entry").
    pub fn child(&self, slot: u16, name: &str) -> PathSlots {
        assert!(slot != 0, "slot 0 is reserved");
        let mut next = *self;
        next.full_depth += 1;
        if (self.depth as usize) < DIR_SLOT_LEVELS {
            next.slots[self.depth as usize] = slot;
            next.depth += 1;
        } else {
            let mut buf = Vec::with_capacity(8 + 1 + name.len());
            buf.extend_from_slice(&self.remainder.to_be_bytes());
            buf.push(b'/');
            buf.extend_from_slice(name.as_bytes());
            next.remainder = sha256(&buf).to_u64();
        }
        next
    }

    /// Number of levels encoded directly as slots.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Total path depth including levels beyond the slot prefix.
    pub fn full_depth(&self) -> usize {
        self.full_depth as usize
    }

    /// Whether this path's slot prefix is a strict prefix of `other`'s.
    pub fn is_ancestor_of(&self, other: &PathSlots) -> bool {
        if self.full_depth >= other.full_depth {
            return false;
        }
        if self.depth as usize == DIR_SLOT_LEVELS {
            // Beyond slot resolution we cannot tell; compare the slot prefix.
            return self.slots == other.slots;
        }
        other.slots[..self.depth as usize] == self.slots[..self.depth as usize]
    }

    /// The slot values (zero-padded past `depth`).
    pub fn slots(&self) -> &[u16; DIR_SLOT_LEVELS] {
        &self.slots
    }

    /// The remainder hash for components deeper than the slot prefix.
    pub fn remainder(&self) -> u64 {
        self.remainder
    }
}

impl fmt::Debug for PathSlots {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Slots[")?;
        for s in &self.slots[..self.depth as usize] {
            write!(f, "{s} ")?;
        }
        if self.remainder != 0 {
            write!(f, "+{:x}", self.remainder)?;
        }
        write!(f, "]")
    }
}

/// Assigns 2-byte slot values to the children of a single directory.
///
/// Two strategies are supported, matching the paper:
///
/// - [`SlotAllocator::next_sequential`] — "an unused 2-byte value in that
///   directory is assigned to the file" (Section 4.2); we hand out values
///   in creation order.
/// - [`SlotAllocator::slot_for_name`] — "a 2-byte hash of each directory
///   name" for applications (like a Web cache) that must encode a path
///   without knowing the parent directory (footnote 2). Collisions lose a
///   small amount of locality but never correctness.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SlotAllocator {
    next: u16,
    by_name: HashMap<String, u16>,
}

impl SlotAllocator {
    /// Creates an empty allocator (first sequential slot is 1).
    pub fn new() -> Self {
        SlotAllocator {
            next: 1,
            by_name: HashMap::new(),
        }
    }

    /// Returns the slot already assigned to `name`, if any.
    pub fn get(&self, name: &str) -> Option<u16> {
        self.by_name.get(name).copied()
    }

    /// Assigns the next unused sequential slot to `name`, or returns the
    /// existing assignment. Returns `None` when the directory is full
    /// (65,535 entries — "64K files per directory" in the paper).
    pub fn next_sequential(&mut self, name: &str) -> Option<u16> {
        if let Some(&s) = self.by_name.get(name) {
            return Some(s);
        }
        if self.next == 0 {
            return None; // wrapped: directory full
        }
        let s = self.next;
        self.next = self.next.wrapping_add(1);
        if self.next == 0 {
            // Mark full; slot 0 stays reserved.
            self.next = 0;
        }
        self.by_name.insert(name.to_string(), s);
        Some(s)
    }

    /// Stateless 2-byte hash slot for `name` (never 0).
    pub fn slot_for_name(name: &str) -> u16 {
        let h = sha256(name.as_bytes()).to_u64() as u16;
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// Number of names assigned so far.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether no slot has been assigned yet.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Forgets the assignment for `name` (on unlink). The slot value is
    /// *not* reused, preserving key stability for stale readers.
    pub fn remove(&mut self, name: &str) -> Option<u16> {
        self.by_name.remove(name)
    }

    /// Iterates over `(name, slot)` assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u16)> {
        self.by_name.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Builds the locality-preserving D2 key of Figure 4.
///
/// `block_no` distinguishes blocks belonging to one file (0 = the file's or
/// directory's metadata block; data blocks start at 1), and `version`
/// distinguishes overwritten versions so that slightly stale readers can
/// still fetch old versions (Section 4.2).
pub fn d2_key(vol: &VolumeId, path: &PathSlots, block_no: u64, version: u32) -> Key {
    let mut b = [0u8; KEY_BYTES];
    b[..VOL_BYTES].copy_from_slice(&vol.0);
    for (i, s) in path.slots.iter().enumerate() {
        b[SLOT_OFF + 2 * i..SLOT_OFF + 2 * i + 2].copy_from_slice(&s.to_be_bytes());
    }
    b[REM_OFF..REM_OFF + 8].copy_from_slice(&path.remainder.to_be_bytes());
    b[BLOCK_OFF..BLOCK_OFF + 8].copy_from_slice(&block_no.to_be_bytes());
    b[VER_OFF..VER_OFF + 4].copy_from_slice(&version.to_be_bytes());
    Key::from_bytes(b)
}

/// Extracts the `(block_no, version)` trailer from a D2 key.
pub fn d2_key_trailer(key: &Key) -> (u64, u32) {
    let b = key.as_bytes();
    (
        u64::from_be_bytes(b[BLOCK_OFF..BLOCK_OFF + 8].try_into().unwrap()),
        u32::from_be_bytes(b[VER_OFF..VER_OFF + 4].try_into().unwrap()),
    )
}

/// Expands a 32-byte digest plus salt into a full 64-byte key.
fn expand_hash_to_key(input: &[u8]) -> Key {
    let h1 = sha256(input);
    let mut buf = [0u8; 33];
    buf[..32].copy_from_slice(h1.as_bytes());
    buf[32] = 0x5a;
    let h2 = sha256(&buf);
    let mut b = [0u8; KEY_BYTES];
    b[..32].copy_from_slice(h1.as_bytes());
    b[32..].copy_from_slice(h2.as_bytes());
    Key::from_bytes(b)
}

/// The traditional (CFS-style) encoding: a uniform hash of the fully
/// qualified block name. Related blocks land on unrelated nodes.
pub fn traditional_key(vol: &VolumeId, path: &str, block_no: u64, version: u32) -> Key {
    let mut buf = Vec::with_capacity(VOL_BYTES + path.len() + 12 + 2);
    buf.extend_from_slice(&vol.0);
    buf.push(0);
    buf.extend_from_slice(path.as_bytes());
    buf.push(0);
    buf.extend_from_slice(&block_no.to_be_bytes());
    buf.extend_from_slice(&version.to_be_bytes());
    expand_hash_to_key(&buf)
}

/// The traditional-file (PAST-style) encoding: the file's *placement* is a
/// uniform hash of its path, but all blocks of the file share that prefix
/// so they are stored together; block number and version fill the trailer.
pub fn traditional_file_key(vol: &VolumeId, path: &str, block_no: u64, version: u32) -> Key {
    let mut buf = Vec::with_capacity(VOL_BYTES + path.len() + 1);
    buf.extend_from_slice(&vol.0);
    buf.push(0);
    buf.extend_from_slice(path.as_bytes());
    let h = sha256(&buf);
    let mut b = [0u8; KEY_BYTES];
    b[..32].copy_from_slice(h.as_bytes());
    // Bytes 32..52 from a second hash round for full-width placement.
    let mut buf2 = [0u8; 33];
    buf2[..32].copy_from_slice(h.as_bytes());
    buf2[32] = 0xa5;
    let h2 = sha256(&buf2);
    b[32..BLOCK_OFF].copy_from_slice(&h2.as_bytes()[..BLOCK_OFF - 32]);
    b[BLOCK_OFF..BLOCK_OFF + 8].copy_from_slice(&block_no.to_be_bytes());
    b[VER_OFF..VER_OFF + 4].copy_from_slice(&version.to_be_bytes());
    Key::from_bytes(b)
}

/// Encodes a URL as a D2 path with reversed domain tuples, e.g.
/// `www.yahoo.com/index.html` → `com/yahoo/www/index.html` (Section 4.1),
/// using stateless 2-byte name-hash slots (footnote 2).
pub fn web_path_slots(url: &str) -> PathSlots {
    let url = url
        .trim_start_matches("http://")
        .trim_start_matches("https://");
    let (host, rest) = match url.find('/') {
        Some(i) => (&url[..i], &url[i + 1..]),
        None => (url, ""),
    };
    let mut slots = PathSlots::root();
    for label in host.split('.').rev().filter(|s| !s.is_empty()) {
        slots = slots.child(SlotAllocator::slot_for_name(label), label);
    }
    for seg in rest.split('/').filter(|s| !s.is_empty()) {
        slots = slots.child(SlotAllocator::slot_for_name(seg), seg);
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol() -> VolumeId {
        VolumeId::from_name("testvol")
    }

    #[test]
    fn volume_id_stable_and_distinct() {
        assert_eq!(VolumeId::from_name("a"), VolumeId::from_name("a"));
        assert_ne!(VolumeId::from_name("a"), VolumeId::from_name("b"));
    }

    #[test]
    fn file_blocks_are_contiguous() {
        let v = vol();
        let dir = PathSlots::root().child(1, "docs");
        let file = dir.child(2, "a.txt");
        let k0 = d2_key(&v, &file, 0, 0);
        let k1 = d2_key(&v, &file, 1, 0);
        let k2 = d2_key(&v, &file, 2, 0);
        assert!(k0 < k1 && k1 < k2);
        // Another file in the same directory must not interleave.
        let other = dir.child(3, "b.txt");
        let o0 = d2_key(&v, &other, 0, 0);
        assert!(k2 < o0);
    }

    #[test]
    fn directory_metadata_sorts_before_children() {
        let v = vol();
        let dir = PathSlots::root().child(5, "src");
        let dir_meta = d2_key(&v, &dir, 0, 0);
        let child = dir.child(1, "main.rs");
        assert!(dir_meta < d2_key(&v, &child, 0, 0));
    }

    #[test]
    fn preorder_traversal_matches_key_order() {
        // root -> a(1) -> {x(1), y(2)}; root -> b(2)
        let v = vol();
        let a = PathSlots::root().child(1, "a");
        let x = a.child(1, "x");
        let y = a.child(2, "y");
        let b = PathSlots::root().child(2, "b");
        let keys = [
            d2_key(&v, &PathSlots::root(), 0, 0),
            d2_key(&v, &a, 0, 0),
            d2_key(&v, &x, 0, 0),
            d2_key(&v, &x, 1, 0),
            d2_key(&v, &y, 0, 0),
            d2_key(&v, &b, 0, 0),
        ];
        let mut sorted = keys;
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn different_volumes_are_disjoint_prefixes() {
        let p = PathSlots::root().child(1, "f");
        let k1 = d2_key(&VolumeId::from_name("v1"), &p, 0, 0);
        let k2 = d2_key(&VolumeId::from_name("v2"), &p, 0, 0);
        assert_ne!(k1.as_bytes()[..20], k2.as_bytes()[..20]);
    }

    #[test]
    fn deep_paths_fold_into_remainder() {
        let mut p = PathSlots::root();
        for i in 0..15 {
            p = p.child(1, &format!("d{i}"));
        }
        assert_eq!(p.depth(), DIR_SLOT_LEVELS);
        assert_eq!(p.full_depth(), 15);
        assert_ne!(p.remainder(), 0);
        // Two different deep files get different remainders.
        let f1 = p.child(1, "deep1");
        let f2 = p.child(1, "deep2");
        assert_ne!(f1.remainder(), f2.remainder());
    }

    #[test]
    fn trailer_roundtrip() {
        let v = vol();
        let p = PathSlots::root().child(9, "f");
        let k = d2_key(&v, &p, 77, 13);
        assert_eq!(d2_key_trailer(&k), (77, 13));
    }

    #[test]
    fn versions_adjacent_in_keyspace() {
        let v = vol();
        let p = PathSlots::root().child(1, "f");
        let k0 = d2_key(&v, &p, 1, 0);
        let k1 = d2_key(&v, &p, 1, 1);
        assert!(k0 < k1);
        // Still below the next block number.
        assert!(k1 < d2_key(&v, &p, 2, 0));
    }

    #[test]
    fn traditional_keys_scatter() {
        let v = vol();
        // Consecutive blocks of the same file get unrelated keys.
        let k0 = traditional_key(&v, "/docs/a.txt", 0, 0);
        let k1 = traditional_key(&v, "/docs/a.txt", 1, 0);
        let prefix0 = &k0.as_bytes()[..8];
        let prefix1 = &k1.as_bytes()[..8];
        assert_ne!(prefix0, prefix1);
        // Deterministic.
        assert_eq!(k0, traditional_key(&v, "/docs/a.txt", 0, 0));
    }

    #[test]
    fn traditional_file_keys_share_placement_prefix() {
        let v = vol();
        let k0 = traditional_file_key(&v, "/docs/a.txt", 0, 0);
        let k9 = traditional_file_key(&v, "/docs/a.txt", 9, 0);
        assert_eq!(k0.as_bytes()[..32], k9.as_bytes()[..32]);
        assert!(k0 < k9);
        // Different files scatter.
        let other = traditional_file_key(&v, "/docs/b.txt", 0, 0);
        assert_ne!(k0.as_bytes()[..8], other.as_bytes()[..8]);
    }

    #[test]
    fn slot_allocator_sequential() {
        let mut a = SlotAllocator::new();
        assert_eq!(a.next_sequential("x"), Some(1));
        assert_eq!(a.next_sequential("y"), Some(2));
        assert_eq!(a.next_sequential("x"), Some(1)); // idempotent
        assert_eq!(a.get("y"), Some(2));
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove("x"), Some(1));
        assert_eq!(a.get("x"), None);
    }

    #[test]
    fn slot_for_name_never_zero() {
        for name in ["", "a", "com", "www", "index.html"] {
            assert_ne!(SlotAllocator::slot_for_name(name), 0);
        }
    }

    #[test]
    fn web_urls_reverse_domains() {
        let a = web_path_slots("www.yahoo.com/index.html");
        let b = web_path_slots("mail.yahoo.com/inbox");
        // Shared reversed prefix: com, yahoo — so first two slots equal.
        assert_eq!(a.slots()[..2], b.slots()[..2]);
        assert_ne!(a.slots()[2], b.slots()[2]);
        // Scheme prefix is stripped.
        assert_eq!(
            web_path_slots("http://www.yahoo.com/index.html").slots(),
            a.slots()
        );
    }

    #[test]
    fn ancestor_relation() {
        let a = PathSlots::root().child(1, "a");
        let ax = a.child(2, "x");
        assert!(PathSlots::root().is_ancestor_of(&a));
        assert!(a.is_ancestor_of(&ax));
        assert!(!ax.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
    }
}
