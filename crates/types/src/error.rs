//! Error types shared by the D2 crates.

use crate::key::Key;
use std::fmt;

/// Convenient result alias for D2 operations.
pub type Result<T> = std::result::Result<T, D2Error>;

/// Errors surfaced by the D2 stack.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum D2Error {
    /// No replica holding `key` is currently reachable.
    Unavailable(Key),
    /// The block exists nowhere in the system.
    NotFound(Key),
    /// A metadata block failed integrity verification against the hash
    /// recorded in its parent.
    IntegrityFailure(Key),
    /// The root block signature did not verify.
    BadSignature,
    /// A path component does not exist.
    NoSuchPath(String),
    /// The path already exists (e.g. creating over an existing file).
    AlreadyExists(String),
    /// A directory ran out of 2-byte slots (64K entries).
    DirectoryFull(String),
    /// A malformed on-wire or on-disk block.
    Codec(String),
    /// The operation is invalid in the current state.
    InvalidOperation(String),
}

impl fmt::Display for D2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            D2Error::Unavailable(k) => write!(f, "no replica reachable for key {k}"),
            D2Error::NotFound(k) => write!(f, "block not found for key {k}"),
            D2Error::IntegrityFailure(k) => write!(f, "integrity check failed for key {k}"),
            D2Error::BadSignature => write!(f, "root block signature did not verify"),
            D2Error::NoSuchPath(p) => write!(f, "no such path: {p}"),
            D2Error::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            D2Error::DirectoryFull(p) => write!(f, "directory full (64K entries): {p}"),
            D2Error::Codec(m) => write!(f, "malformed block: {m}"),
            D2Error::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
        }
    }
}

impl std::error::Error for D2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            D2Error::Unavailable(Key::from_u64(1)),
            D2Error::NotFound(Key::from_u64(2)),
            D2Error::IntegrityFailure(Key::from_u64(3)),
            D2Error::BadSignature,
            D2Error::NoSuchPath("/x".into()),
            D2Error::AlreadyExists("/y".into()),
            D2Error::DirectoryFull("/z".into()),
            D2Error::Codec("bad".into()),
            D2Error::InvalidOperation("nope".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<D2Error>();
    }
}
