//! A from-scratch SHA-256 implementation (FIPS 180-4).
//!
//! D2 cannot use content hashes *as keys* (keys must preserve name-space
//! locality), so metadata blocks carry the content hashes of the blocks
//! they point to and the integrity chain is verified from the signed root
//! (paper Section 3). This module provides those content hashes, the
//! hashed baseline key encodings, and the keyed-MAC "publisher signature"
//! substitute used by `d2-fs`.
//!
//! No cryptography crate is in the allowed dependency set, so SHA-256 is
//! implemented here and validated against the official FIPS test vectors.

use serde::{Deserialize, Serialize};
use std::fmt;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use d2_types::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     digest.to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hash.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> ContentHash {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros then 8-byte big-endian bit length.
        self.update_padding(0x80);
        while self.buf_len != 56 {
            self.update_padding(0);
        }
        let len_bytes = bit_len.to_be_bytes();
        for b in len_bytes {
            self.buf[self.buf_len] = b;
            self.buf_len += 1;
        }
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        ContentHash(out)
    }

    fn update_padding(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Convenience one-shot SHA-256.
///
/// ```
/// use d2_types::sha256;
/// assert_eq!(
///     sha256(b"").to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> ContentHash {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// A 32-byte SHA-256 digest used as a block content hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Digest of the empty byte string.
    pub fn of_empty() -> Self {
        sha256(b"")
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex representation.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            use std::fmt::Write as _;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// Truncates the digest to a little `u64` (for compact fingerprints).
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().unwrap())
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({}…)", &self.to_hex()[..12])
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Keyed MAC standing in for the publisher's public-key signature over the
/// root block (paper Section 3). `mac = SHA256(secret ‖ data ‖ secret)`.
///
/// The evaluation never exercises cryptographic strength, only the
/// integrity-chain *logic*; see DESIGN.md §3 for the substitution note.
pub fn keyed_mac(secret: &[u8], data: &[u8]) -> ContentHash {
    let mut h = Sha256::new();
    h.update(secret);
    h.update(data);
    h.update(secret);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 test vectors.
    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split={split}");
        }
    }

    #[test]
    fn mac_depends_on_secret_and_data() {
        let m1 = keyed_mac(b"s1", b"data");
        let m2 = keyed_mac(b"s2", b"data");
        let m3 = keyed_mac(b"s1", b"other");
        assert_ne!(m1, m2);
        assert_ne!(m1, m3);
        assert_eq!(m1, keyed_mac(b"s1", b"data"));
    }

    #[test]
    fn content_hash_formatting() {
        let h = sha256(b"x");
        assert_eq!(h.to_hex().len(), 64);
        assert!(format!("{h:?}").contains("ContentHash"));
        assert_eq!(format!("{h}"), h.to_hex());
    }

    #[test]
    fn to_u64_is_prefix() {
        let h = sha256(b"prefix");
        let expect = u64::from_be_bytes(h.0[..8].try_into().unwrap());
        assert_eq!(h.to_u64(), expect);
    }
}
