//! A small-vector for hot paths: up to `N` elements inline (no heap
//! allocation), spilling to a `Vec` only beyond that.
//!
//! The cluster's per-block holder lists and replica groups are bounded
//! by the replication factor (≤ 8 in every configuration the paper
//! sweeps), so returning them in an [`InlineVec`] removes one heap
//! allocation per block access from the simulators' innermost loops.
//! Elements must be `Copy + Default` — the inline buffer is plain old
//! data, which keeps this type free of `unsafe`.

use core::ops::{Deref, DerefMut};

/// A vector storing up to `N` elements inline, spilling to the heap
/// past that. Dereferences to `[T]`, so slice methods (`iter`, `len`,
/// `contains`, indexing, …) all work unchanged.
#[derive(Clone, Debug)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    inline: [T; N],
    len: usize,
    /// Overflow storage; non-empty only once more than `N` elements were
    /// pushed, at which point it holds *all* elements.
    spill: Vec<T>,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            inline: [T::default(); N],
            len: 0,
            spill: Vec::new(),
        }
    }

    /// Appends an element, spilling to the heap on overflow.
    pub fn push(&mut self, value: T) {
        if self.spill.is_empty() && self.len < N {
            self.inline[self.len] = value;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(self.len + 1);
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(value);
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        if self.spill.is_empty() {
            self.len
        } else {
            self.spill.len()
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all elements, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Whether the elements still fit in the inline buffer.
    pub fn is_inline(&self) -> bool {
        self.spill.is_empty()
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        if self.spill.is_empty() {
            &mut self.inline[..self.len]
        } else {
            &mut self.spill
        }
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = InlineVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

/// Owning iterator (elements are `Copy`, so it reads from the buffer).
#[derive(Clone, Debug)]
pub struct InlineVecIter<T: Copy + Default, const N: usize> {
    vec: InlineVec<T, N>,
    pos: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for InlineVecIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        let v = self.vec.as_slice().get(self.pos).copied()?;
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len() - self.pos;
        (rem, Some(rem))
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = InlineVecIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        InlineVecIter { vec: self, pos: 0 }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        for i in 0..4 {
            v.push(i);
        }
        assert!(v.is_inline());
        assert_eq!(v.len(), 4);
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_past_capacity_and_keeps_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(!v.is_inline());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(v.len(), 5);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn slice_methods_via_deref() {
        let v: InlineVec<u32, 4> = [7, 8, 9].into_iter().collect();
        assert!(v.contains(&8));
        assert_eq!(v[0], 7);
        assert_eq!(v.iter().sum::<u32>(), 24);
    }

    #[test]
    fn owned_and_borrowed_iteration() {
        let v: InlineVec<u32, 2> = (0..6).collect();
        let owned: Vec<u32> = v.clone().into_iter().collect();
        let borrowed: Vec<u32> = (&v).into_iter().copied().collect();
        assert_eq!(owned, borrowed);
        assert_eq!(owned, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn equality_across_storage_modes() {
        let small: InlineVec<u32, 8> = (0..3).collect();
        let spilled: InlineVec<u32, 2> = (0..3).collect();
        assert_eq!(small.as_slice(), spilled.as_slice());
        assert_eq!(small, vec![0, 1, 2]);
    }
}
