//! The 512-bit circular key space.
//!
//! Every block key and node identifier in D2 lives on a ring of
//! `2^512` points, represented as 64 big-endian bytes ([`KEY_BYTES`]).
//! The paper's Figure 4 encoding produces exactly 64-byte keys, and node
//! identifiers share the space so that a node owns the keys between its
//! predecessor (exclusive) and itself (inclusive).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Number of bytes in a ring key (the paper uses 64-byte keys, Figure 4).
pub const KEY_BYTES: usize = 64;

const LIMBS: usize = 8;

/// A point on the 512-bit circular key space.
///
/// Keys are totally ordered as big-endian unsigned integers; ring-aware
/// operations ([`Key::distance_to`], [`Key::midpoint`], [`KeyRange`]) wrap
/// around the maximum value.
///
/// # Examples
///
/// ```
/// use d2_types::Key;
///
/// let k = Key::from_u64(42);
/// assert_eq!(k.to_u64_lossy(), 42);
/// assert!(Key::MIN < k && k < Key::MAX);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Key(#[serde(with = "serde_bytes_64")] pub(crate) [u8; KEY_BYTES]);

// With the offline serde stub the derive never calls these helpers, so
// they look dead to rustc; keep them — they are live under real serde.
#[allow(dead_code)]
mod serde_bytes_64 {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[u8; 64], s: S) -> Result<S::Ok, S::Error> {
        v.as_slice().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<[u8; 64], D::Error> {
        let v = Vec::<u8>::deserialize(d)?;
        let mut out = [0u8; 64];
        if v.len() != 64 {
            return Err(serde::de::Error::custom("key must be 64 bytes"));
        }
        out.copy_from_slice(&v);
        Ok(out)
    }
}

impl Key {
    /// The smallest key (all zero bytes).
    pub const MIN: Key = Key([0u8; KEY_BYTES]);
    /// The largest key (all `0xff` bytes).
    pub const MAX: Key = Key([0xffu8; KEY_BYTES]);

    /// Creates a key from raw big-endian bytes.
    pub fn from_bytes(bytes: [u8; KEY_BYTES]) -> Self {
        Key(bytes)
    }

    /// Returns the raw big-endian bytes of the key.
    pub fn as_bytes(&self) -> &[u8; KEY_BYTES] {
        &self.0
    }

    /// Creates a key whose low 64 bits are `v` and all other bits zero.
    pub fn from_u64(v: u64) -> Self {
        let mut b = [0u8; KEY_BYTES];
        b[KEY_BYTES - 8..].copy_from_slice(&v.to_be_bytes());
        Key(b)
    }

    /// Creates a key whose *high* 64 bits are `v`, so that the natural
    /// `u64` ordering is preserved at the top of the key space.
    ///
    /// Useful for ordered scenarios driven by small integers (e.g. the HP
    /// block-number workload of Figure 3).
    pub fn from_u64_ordered(v: u64) -> Self {
        let mut b = [0u8; KEY_BYTES];
        b[..8].copy_from_slice(&v.to_be_bytes());
        Key(b)
    }

    /// Creates a key from a fraction of the ring in `[0, 1)`.
    ///
    /// `Key::from_fraction(0.5)` is the exact midpoint of the ring. Only the
    /// top 64 bits are populated, which is plenty of resolution for node
    /// placement.
    pub fn from_fraction(f: f64) -> Self {
        let f = f.clamp(0.0, 1.0 - f64::EPSILON);
        Key::from_u64_ordered((f * (u64::MAX as f64)) as u64)
    }

    /// Returns this key's position as a fraction of the ring in `[0, 1)`.
    pub fn to_fraction(&self) -> f64 {
        let hi = u64::from_be_bytes(self.0[..8].try_into().unwrap());
        hi as f64 / u64::MAX as f64
    }

    /// Returns the low 64 bits (for keys created with [`Key::from_u64`]).
    pub fn to_u64_lossy(&self) -> u64 {
        u64::from_be_bytes(self.0[KEY_BYTES - 8..].try_into().unwrap())
    }

    fn to_limbs(self) -> [u64; LIMBS] {
        let mut l = [0u64; LIMBS];
        for (i, limb) in l.iter_mut().enumerate() {
            *limb = u64::from_be_bytes(self.0[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        l
    }

    fn from_limbs(l: [u64; LIMBS]) -> Self {
        let mut b = [0u8; KEY_BYTES];
        for (i, limb) in l.iter().enumerate() {
            b[i * 8..(i + 1) * 8].copy_from_slice(&limb.to_be_bytes());
        }
        Key(b)
    }

    /// Wrapping addition on the ring.
    pub fn wrapping_add(&self, other: &Key) -> Key {
        let a = self.to_limbs();
        let b = other.to_limbs();
        let mut out = [0u64; LIMBS];
        let mut carry = 0u64;
        for i in (0..LIMBS).rev() {
            let (s1, c1) = a[i].overflowing_add(b[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        Key::from_limbs(out)
    }

    /// Wrapping subtraction on the ring.
    pub fn wrapping_sub(&self, other: &Key) -> Key {
        let a = self.to_limbs();
        let b = other.to_limbs();
        let mut out = [0u64; LIMBS];
        let mut borrow = 0u64;
        for i in (0..LIMBS).rev() {
            let (s1, c1) = a[i].overflowing_sub(b[i]);
            let (s2, c2) = s1.overflowing_sub(borrow);
            out[i] = s2;
            borrow = (c1 as u64) + (c2 as u64);
        }
        Key::from_limbs(out)
    }

    /// Halves the key (logical shift right by one bit).
    pub fn half(&self) -> Key {
        let l = self.to_limbs();
        let mut out = [0u64; LIMBS];
        let mut carry = 0u64;
        for i in 0..LIMBS {
            out[i] = (l[i] >> 1) | (carry << 63);
            carry = l[i] & 1;
        }
        Key::from_limbs(out)
    }

    /// Clockwise distance from `self` to `other` on the ring
    /// (`other - self mod 2^512`).
    ///
    /// ```
    /// use d2_types::Key;
    /// let a = Key::from_u64(10);
    /// let b = Key::from_u64(4);
    /// // from b clockwise to a is 6 steps
    /// assert_eq!(b.distance_to(&a), Key::from_u64(6));
    /// ```
    pub fn distance_to(&self, other: &Key) -> Key {
        other.wrapping_sub(self)
    }

    /// The point halfway along the clockwise arc from `self` to `other`.
    ///
    /// Used by the load balancer when a node rejoins as another node's
    /// predecessor to split its load in half.
    pub fn midpoint(&self, other: &Key) -> Key {
        let d = self.distance_to(other);
        self.wrapping_add(&d.half())
    }

    /// Generates a uniformly random key from `rng`.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Key {
        let mut b = [0u8; KEY_BYTES];
        rng.fill_bytes(&mut b);
        Key(b)
    }

    /// Increments the key by one (wrapping).
    pub fn successor_point(&self) -> Key {
        self.wrapping_add(&Key::from_u64(1))
    }
}

impl Default for Key {
    fn default() -> Self {
        Key::MIN
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Show the first 8 bytes: enough to distinguish keys in logs.
        write!(f, "Key(")?;
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<[u8; KEY_BYTES]> for Key {
    fn from(b: [u8; KEY_BYTES]) -> Self {
        Key(b)
    }
}

/// A node identifier: a position on the same ring as block keys.
///
/// In D2, node IDs are *not* secure hashes — the load balancer moves nodes
/// to arbitrary ring positions (Section 6), which is why the paper flags
/// untrusted-infrastructure ID selection as future work.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct NodeId(pub Key);

impl NodeId {
    /// Creates a node ID at the given ring point.
    pub fn new(key: Key) -> Self {
        NodeId(key)
    }

    /// The ring position of the node.
    pub fn key(&self) -> &Key {
        &self.0
    }

    /// Generates a uniformly random node ID (consistent hashing placement).
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        NodeId(Key::random(rng))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Node({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A half-open arc `(start, end]` on the key ring.
///
/// This is the ownership convention of successor-based DHTs: the node with
/// ID `n` and predecessor `p` owns `KeyRange::new(p, n)`. When
/// `start == end` the range covers the *entire* ring (a single-node system).
///
/// # Examples
///
/// ```
/// use d2_types::{Key, KeyRange};
///
/// // A wrapping range near the top of the ring.
/// let r = KeyRange::new(Key::MAX, Key::from_u64(5));
/// assert!(r.contains(&Key::from_u64(3)));
/// assert!(!r.contains(&Key::MAX));          // start is exclusive
/// assert!(r.contains(&Key::from_u64(5)));   // end is inclusive
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct KeyRange {
    start: Key,
    end: Key,
}

impl KeyRange {
    /// Creates the arc `(start, end]` (clockwise). `start == end` denotes
    /// the full ring.
    pub fn new(start: Key, end: Key) -> Self {
        KeyRange { start, end }
    }

    /// The full ring.
    pub fn full() -> Self {
        KeyRange {
            start: Key::MIN,
            end: Key::MIN,
        }
    }

    /// Exclusive start of the arc.
    pub fn start(&self) -> &Key {
        &self.start
    }

    /// Inclusive end of the arc.
    pub fn end(&self) -> &Key {
        &self.end
    }

    /// Whether this range covers the whole ring.
    pub fn is_full(&self) -> bool {
        self.start == self.end
    }

    /// Whether `key` lies on the arc `(start, end]`.
    pub fn contains(&self, key: &Key) -> bool {
        if self.is_full() {
            return true;
        }
        if self.start < self.end {
            *key > self.start && *key <= self.end
        } else {
            *key > self.start || *key <= self.end
        }
    }

    /// Clockwise length of the arc (`0` means full ring).
    pub fn span(&self) -> Key {
        self.start.distance_to(&self.end)
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn key_ordering_is_big_endian() {
        assert!(Key::from_u64(1) < Key::from_u64(2));
        assert!(Key::from_u64_ordered(1) > Key::from_u64(u64::MAX));
        assert!(Key::MIN < Key::MAX);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Key::from_u64(123456789);
        let b = Key::from_u64_ordered(987654321);
        assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
        assert_eq!(a.wrapping_sub(&b).wrapping_add(&b), a);
    }

    #[test]
    fn wrapping_add_carries_across_limbs() {
        let a = Key::from_u64(u64::MAX);
        let one = Key::from_u64(1);
        let sum = a.wrapping_add(&one);
        // Carry propagates into limb 6.
        assert_eq!(sum.to_u64_lossy(), 0);
        assert_eq!(sum.0[KEY_BYTES - 9], 1);
    }

    #[test]
    fn max_plus_one_wraps_to_zero() {
        assert_eq!(Key::MAX.wrapping_add(&Key::from_u64(1)), Key::MIN);
    }

    #[test]
    fn distance_wraps() {
        let a = Key::from_u64(10);
        let b = Key::from_u64(4);
        assert_eq!(b.distance_to(&a), Key::from_u64(6));
        // Going the other way wraps around the whole ring.
        assert_eq!(
            a.distance_to(&b),
            Key::from_u64(4).wrapping_sub(&Key::from_u64(10))
        );
    }

    #[test]
    fn half_shifts_right() {
        assert_eq!(Key::from_u64(8).half(), Key::from_u64(4));
        let h = Key::MAX.half();
        assert_eq!(h.0[0], 0x7f);
        assert!(h.0[1..].iter().all(|&b| b == 0xff));
    }

    #[test]
    fn midpoint_of_simple_arc() {
        let a = Key::from_u64(10);
        let b = Key::from_u64(20);
        assert_eq!(a.midpoint(&b), Key::from_u64(15));
    }

    #[test]
    fn midpoint_of_wrapping_arc() {
        // Arc from MAX-1 to 3 has length 5; midpoint is MAX-1+2 = 0.
        let a = Key::MAX.wrapping_sub(&Key::from_u64(1));
        let b = Key::from_u64(3);
        let m = a.midpoint(&b);
        // distance = 5, half = 2, so midpoint = (MAX-1)+2 = MIN (wraps).
        assert_eq!(m, Key::MIN);
        assert!(KeyRange::new(a, b).contains(&m));
    }

    #[test]
    fn fraction_roundtrip() {
        for f in [0.0, 0.25, 0.5, 0.75, 0.999] {
            let k = Key::from_fraction(f);
            assert!((k.to_fraction() - f).abs() < 1e-9, "f={f}");
        }
    }

    #[test]
    fn range_simple_contains() {
        let r = KeyRange::new(Key::from_u64(10), Key::from_u64(20));
        assert!(!r.contains(&Key::from_u64(10)));
        assert!(r.contains(&Key::from_u64(11)));
        assert!(r.contains(&Key::from_u64(20)));
        assert!(!r.contains(&Key::from_u64(21)));
    }

    #[test]
    fn range_wrapping_contains() {
        let r = KeyRange::new(Key::from_u64_ordered(u64::MAX), Key::from_u64(5));
        assert!(r.contains(&Key::from_u64(0)));
        assert!(r.contains(&Key::MAX));
        assert!(!r.contains(&Key::from_u64(6)));
    }

    #[test]
    fn full_range_contains_everything() {
        let r = KeyRange::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert!(r.contains(&Key::random(&mut rng)));
        }
    }

    #[test]
    fn random_keys_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Key::random(&mut rng);
        let b = Key::random(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_display_nonempty() {
        let k = Key::from_u64(7);
        assert!(!format!("{k:?}").is_empty());
        assert!(!format!("{k}").is_empty());
        assert!(!format!("{:?}", NodeId::new(k)).is_empty());
        assert!(!format!("{}", KeyRange::full()).is_empty());
    }
}
