//! Core types for the D2 defragmented DHT file system.
//!
//! This crate defines the 512-bit circular key space shared by every other
//! crate in the workspace, the SHA-256 implementation used for content
//! hashes and hashed key encodings, and the three key encodings compared in
//! the paper:
//!
//! - [`encoding::d2_key`] — the locality-preserving encoding of Figure 4
//!   (volume id, per-directory 2-byte slots, path-remainder hash, block
//!   number, version hash);
//! - [`encoding::traditional_key`] — uniformly hashed per-block keys, as in
//!   CFS;
//! - [`encoding::traditional_file_key`] — per-file hashed placement with
//!   block offsets, modelling PAST-style whole-file objects.
//!
//! # Examples
//!
//! ```
//! use d2_types::{Key, KeyRange};
//!
//! let a = Key::from_u64(10);
//! let b = Key::from_u64(20);
//! assert!(a < b);
//! let range = KeyRange::new(a, b);
//! assert!(range.contains(&Key::from_u64(15)));
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod encoding;
pub mod error;
pub mod hash;
pub mod inline_vec;
pub mod key;

pub use block::{BlockKind, BlockName, SystemKind, BLOCK_SIZE, INLINE_DATA_MAX};
pub use encoding::{PathSlots, SlotAllocator, VolumeId, DIR_SLOT_LEVELS};
pub use error::{D2Error, Result};
pub use hash::{sha256, ContentHash, Sha256};
pub use inline_vec::InlineVec;
pub use key::{Key, KeyRange, NodeId, KEY_BYTES};
