//! Property-based tests for key arithmetic and the Figure 4 encoding.

use d2_types::encoding::{d2_key, d2_key_trailer, web_path_slots};
use d2_types::{Key, KeyRange, PathSlots, VolumeId};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = Key> {
    prop::array::uniform32(any::<u8>()).prop_flat_map(|hi| {
        prop::array::uniform32(any::<u8>()).prop_map(move |lo| {
            let mut b = [0u8; 64];
            b[..32].copy_from_slice(&hi);
            b[32..].copy_from_slice(&lo);
            Key::from_bytes(b)
        })
    })
}

proptest! {
    #[test]
    fn add_sub_inverse(a in arb_key(), b in arb_key()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn add_commutative(a in arb_key(), b in arb_key()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn distance_sums_around_ring(a in arb_key(), b in arb_key()) {
        // d(a,b) + d(b,a) == 0 (mod 2^512) unless a == b.
        let fwd = a.distance_to(&b);
        let back = b.distance_to(&a);
        prop_assert_eq!(fwd.wrapping_add(&back), Key::MIN);
    }

    #[test]
    fn midpoint_inside_arc(a in arb_key(), b in arb_key()) {
        prop_assume!(a != b);
        let m = a.midpoint(&b);
        let r = KeyRange::new(a, b);
        // Midpoint is on (a, b] unless the arc has length 1.
        if a.distance_to(&b) != Key::from_u64(1) {
            // Distance >= 2 means midpoint strictly inside or equal start+1.
            prop_assert!(r.contains(&m) || m == a);
        }
    }

    #[test]
    fn half_doubles_back(a in arb_key()) {
        let h = a.half();
        let doubled = h.wrapping_add(&h);
        // doubled == a or a-1 (bit 511 lost).
        let diff = doubled.distance_to(&a);
        prop_assert!(diff == Key::MIN || diff == Key::from_u64(1));
    }

    #[test]
    fn range_contains_boundary_semantics(a in arb_key(), b in arb_key(), k in arb_key()) {
        let r = KeyRange::new(a, b);
        if a != b {
            // Exactly one of (a,b] and (b,a] contains k, for k not equal to endpoints.
            let r2 = KeyRange::new(b, a);
            if k != a && k != b {
                prop_assert!(r.contains(&k) ^ r2.contains(&k));
            }
            prop_assert!(r.contains(&b));
            prop_assert!(!r.contains(&a));
        }
    }

    #[test]
    fn key_order_matches_fraction(a in any::<u64>(), b in any::<u64>()) {
        let ka = Key::from_u64_ordered(a);
        let kb = Key::from_u64_ordered(b);
        prop_assert_eq!(ka.cmp(&kb), a.cmp(&b));
    }
}

fn arb_path(max_depth: usize) -> impl Strategy<Value = Vec<u16>> {
    prop::collection::vec(1u16..=u16::MAX, 1..=max_depth)
}

fn slots_from(path: &[u16]) -> PathSlots {
    let mut p = PathSlots::root();
    for (i, &s) in path.iter().enumerate() {
        p = p.child(s, &format!("c{i}"));
    }
    p
}

proptest! {
    /// Preorder ordering: if path P is lexicographically before path Q at
    /// the first differing slot, P's keys sort before Q's keys (within the
    /// 12-level slot prefix).
    #[test]
    fn lexicographic_paths_give_ordered_keys(
        mut a in arb_path(12),
        mut b in arb_path(12),
    ) {
        a.truncate(12);
        b.truncate(12);
        prop_assume!(a != b);
        let vol = VolumeId::from_name("p");
        let ka = d2_key(&vol, &slots_from(&a), 0, 0);
        let kb = d2_key(&vol, &slots_from(&b), 0, 0);
        // Pad with zeros for comparison (matching the key layout).
        let mut pa = [0u16; 12];
        let mut pb = [0u16; 12];
        pa[..a.len()].copy_from_slice(&a);
        pb[..b.len()].copy_from_slice(&b);
        prop_assert_eq!(pa.cmp(&pb), ka.cmp(&kb));
    }

    #[test]
    fn trailer_roundtrips(path in arb_path(12), block in any::<u64>(), ver in any::<u32>()) {
        let vol = VolumeId::from_name("p");
        let k = d2_key(&vol, &slots_from(&path), block, ver);
        prop_assert_eq!(d2_key_trailer(&k), (block, ver));
    }

    #[test]
    fn ancestor_keys_bound_descendants(path in arb_path(11), extra in 1u16..=u16::MAX) {
        let vol = VolumeId::from_name("p");
        let parent = slots_from(&path);
        let child = parent.child(extra, "leaf");
        let pk = d2_key(&vol, &parent, 0, 0);
        let ck = d2_key(&vol, &child, 0, 0);
        prop_assert!(pk < ck, "parent metadata must precede child blocks");
    }

    #[test]
    fn web_urls_deterministic(host in "[a-z]{1,8}\\.[a-z]{2,3}", path in "[a-z]{0,12}") {
        let url = format!("{host}/{path}");
        let a = web_path_slots(&url);
        let b = web_path_slots(&url);
        prop_assert_eq!(a.slots(), b.slots());
    }
}
