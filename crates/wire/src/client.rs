//! A request/response client port on top of any [`Transport`].
//!
//! Nodes talk to each other in one-way [`WireMsg`]s, but clients need
//! round trips: `put` must not return before the replica chain has
//! acked, `get` must wait for the block. [`WireClient`] owns a transport
//! endpoint, stamps every outgoing [`Request`] with a fresh `req_id`,
//! and runs a dispatcher thread that routes incoming [`Response`]s back
//! to the blocked caller — so several threads can issue requests over
//! one client concurrently.

use crate::codec::{Request, Response, WireMsg};
use crate::metrics::NetMetrics;
use crate::transport::{RecvError, Transport, TransportError};
use d2_obs::TraceCtx;
use d2_ring::messages::Addr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A failed client call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The node could not be reached (dead or in reconnect backoff).
    Unreachable(Addr),
    /// The node was reached but no response arrived in time.
    Timeout,
    /// The client (or its transport) has been shut down.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unreachable(a) => write!(f, "node {a} unreachable"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Closed => write!(f, "client closed"),
        }
    }
}

impl std::error::Error for ClientError {}

type Pending = Arc<Mutex<HashMap<u64, mpsc::Sender<Response>>>>;

/// A blocking request/response client over a [`Transport`] endpoint.
///
/// Dropping the client shuts the dispatcher thread and the underlying
/// transport down.
pub struct WireClient<T: Transport> {
    transport: Arc<T>,
    pending: Pending,
    next_req: AtomicU64,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl<T: Transport> WireClient<T> {
    /// Wraps `transport` as a client endpoint, recording round-trip
    /// times into `metrics`.
    pub fn new(transport: T, metrics: Arc<NetMetrics>) -> Self {
        let transport = Arc::new(transport);
        let pending: Pending = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let dispatcher = {
            let transport = Arc::clone(&transport);
            let pending = Arc::clone(&pending);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || dispatch_loop(&*transport, &pending, &stop))
        };
        WireClient {
            transport,
            pending,
            next_req: AtomicU64::new(1),
            metrics,
            stop,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// The client's own address (responses come back here).
    pub fn local_addr(&self) -> Addr {
        self.transport.local_addr()
    }

    /// Sends `body` to `node` and blocks until the matching response
    /// arrives or `timeout` elapses. Records the round-trip time under
    /// `net.rtt_us.<request type>`. The request travels untraced;
    /// see [`WireClient::call_traced`] to start a causal trace.
    pub fn call(
        &self,
        node: Addr,
        body: Request,
        timeout: Duration,
    ) -> Result<Response, ClientError> {
        self.call_traced(node, body, timeout, TraceCtx::NONE)
    }

    /// [`WireClient::call`], but the request's envelope carries `trace`
    /// — typically [`TraceCtx::root`] with a fresh trace id, making this
    /// call the root span of a causally-linked cross-node span tree
    /// that `d2-node trace <id>` can later reassemble from the nodes'
    /// flight recorders.
    pub fn call_traced(
        &self,
        node: Addr,
        body: Request,
        timeout: Duration,
        trace: TraceCtx,
    ) -> Result<Response, ClientError> {
        if self.stop.load(Ordering::Acquire) {
            return Err(ClientError::Closed);
        }
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let type_name = body.type_name();
        let (tx, rx) = mpsc::channel();
        self.pending.lock().insert(req_id, tx);
        let msg = WireMsg::Request {
            req_id,
            from: self.transport.local_addr(),
            body,
        };
        let start = Instant::now();
        let sent = self.transport.send_traced(node, &msg, trace);
        let result = match sent {
            Err(TransportError::PeerUnreachable(a)) => Err(ClientError::Unreachable(a)),
            Err(TransportError::Closed) => Err(ClientError::Closed),
            Ok(()) => match rx.recv_timeout(timeout) {
                Ok(resp) => {
                    self.metrics
                        .record_rtt(type_name, start.elapsed().as_micros() as u64);
                    Ok(resp)
                }
                Err(mpsc::RecvTimeoutError::Timeout) => Err(ClientError::Timeout),
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(ClientError::Closed),
            },
        };
        self.pending.lock().remove(&req_id);
        result
    }

    /// Fire-and-forget: sends `body` without waiting for any response.
    pub fn notify(&self, node: Addr, body: Request) -> Result<(), ClientError> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let msg = WireMsg::Request {
            req_id,
            from: self.transport.local_addr(),
            body,
        };
        match self.transport.send(node, &msg) {
            Ok(()) => Ok(()),
            Err(TransportError::PeerUnreachable(a)) => Err(ClientError::Unreachable(a)),
            Err(TransportError::Closed) => Err(ClientError::Closed),
        }
    }

    /// Stops the dispatcher and shuts the transport down. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.transport.shutdown();
        if let Some(h) = self.dispatcher.lock().take() {
            let _ = h.join();
        }
        self.pending.lock().clear();
    }
}

impl<T: Transport> Drop for WireClient<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop<T: Transport>(transport: &T, pending: &Pending, stop: &AtomicBool) {
    while !stop.load(Ordering::Acquire) {
        match transport.recv_timeout(Duration::from_millis(100)) {
            Ok((WireMsg::Response { req_id, body }, _)) => {
                if let Some(tx) = pending.lock().remove(&req_id) {
                    let _ = tx.send(body); // caller may have timed out
                }
            }
            Ok(_) => {} // clients ignore ring traffic and stray requests
            Err(RecvError::Timeout) => {}
            Err(RecvError::Closed) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelHub;
    use d2_types::Key;

    /// A toy responder: answers every Get with an empty block.
    fn spawn_echo_node(hub: &ChannelHub) -> (Addr, JoinHandle<()>) {
        let t = hub.open();
        let addr = t.local_addr();
        let h = std::thread::spawn(move || loop {
            match t.recv_timeout(Duration::from_millis(50)) {
                Ok((
                    WireMsg::Request {
                        req_id,
                        from,
                        body: Request::Get { .. },
                    },
                    _,
                )) => {
                    let resp = WireMsg::Response {
                        req_id,
                        body: Response::Block { data: None },
                    };
                    let _ = t.send(from, &resp);
                }
                Ok((
                    WireMsg::Request {
                        req_id,
                        from,
                        body: Request::Shutdown,
                    },
                    _,
                )) => {
                    let _ = t.send(
                        from,
                        &WireMsg::Response {
                            req_id,
                            body: Response::ShutdownAck,
                        },
                    );
                    return;
                }
                Ok(_) => {}
                Err(RecvError::Timeout) => {}
                Err(RecvError::Closed) => return,
            }
        });
        (addr, h)
    }

    #[test]
    fn call_round_trips_and_records_rtt() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let (node, h) = spawn_echo_node(&hub);
        let client = WireClient::new(hub.open(), metrics.clone());
        let resp = client
            .call(
                node,
                Request::Get {
                    key: Key::from_u64(7),
                },
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(resp, Response::Block { data: None });
        assert_eq!(
            client
                .call(node, Request::Shutdown, Duration::from_secs(2))
                .unwrap(),
            Response::ShutdownAck
        );
        h.join().unwrap();
        let reg = metrics.snapshot();
        assert_eq!(reg.histogram("net.rtt_us.get").unwrap().count(), 1);
        assert_eq!(reg.histogram("net.rtt_us.shutdown").unwrap().count(), 1);
    }

    #[test]
    fn call_to_dead_node_is_unreachable_not_hang() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let dead = hub.open();
        let dead_addr = dead.local_addr();
        dead.shutdown();
        drop(dead);
        let client = WireClient::new(hub.open(), metrics);
        let t0 = Instant::now();
        assert_eq!(
            client.call(dead_addr, Request::Status, Duration::from_secs(5)),
            Err(ClientError::Unreachable(dead_addr))
        );
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn unanswered_call_times_out() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let silent = hub.open(); // never reads its mailbox
        let client = WireClient::new(hub.open(), metrics);
        assert_eq!(
            client.call(
                silent.local_addr(),
                Request::Status,
                Duration::from_millis(50)
            ),
            Err(ClientError::Timeout)
        );
    }
}
