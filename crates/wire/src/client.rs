//! A request/response client port on top of any [`Transport`].
//!
//! Nodes talk to each other in one-way [`WireMsg`]s, but clients need
//! round trips: `put` must not return before the replica chain has
//! acked, `get` must wait for the block. [`WireClient`] owns a transport
//! endpoint, stamps every outgoing [`Request`] with a fresh `req_id`,
//! and runs a dispatcher thread that routes incoming [`Response`]s back
//! to the blocked caller — so several threads can issue requests over
//! one client concurrently.
//!
//! Because correlation is per-`req_id`, the client also supports
//! *pipelining*: [`WireClient::submit`] sends a request and returns a
//! [`PendingReply`] handle immediately, so one caller can keep a whole
//! window of requests in flight and harvest responses as they land —
//! each with its own deadline, none head-of-line-blocking the others.
//! [`WireClient::call`] is just `submit(..)?.wait()`.

use crate::codec::{Request, Response, WireMsg};
use crate::metrics::NetMetrics;
use crate::transport::{RecvError, Transport, TransportError};
use d2_obs::TraceCtx;
use d2_ring::messages::Addr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A failed client call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// The node could not be reached (dead or in reconnect backoff).
    Unreachable(Addr),
    /// The node was reached but no response arrived in time.
    Timeout,
    /// The client (or its transport) has been shut down.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Unreachable(a) => write!(f, "node {a} unreachable"),
            ClientError::Timeout => write!(f, "request timed out"),
            ClientError::Closed => write!(f, "client closed"),
        }
    }
}

impl std::error::Error for ClientError {}

type Pending = Arc<Mutex<HashMap<u64, mpsc::Sender<Response>>>>;

/// One in-flight request submitted with [`WireClient::submit`].
///
/// The handle owns the pending-map entry for its `req_id`: resolving it
/// (via [`PendingReply::wait`] or [`PendingReply::poll`]) or dropping it
/// unregisters the request, after which a late response counts as
/// `net.orphan_responses`. The round-trip time of a successful reply is
/// recorded under `net.rtt_us.<request type>` exactly as with
/// [`WireClient::call`].
pub struct PendingReply {
    rx: mpsc::Receiver<Response>,
    pending: Pending,
    metrics: Arc<NetMetrics>,
    req_id: u64,
    type_name: &'static str,
    start: Instant,
    deadline: Instant,
    resolved: bool,
}

impl PendingReply {
    /// The request id this handle is waiting on (diagnostics only).
    pub fn req_id(&self) -> u64 {
        self.req_id
    }

    /// Marks the reply resolved and unregisters the pending entry so a
    /// late response is counted as an orphan instead of queued nowhere.
    fn settle(&mut self) {
        self.resolved = true;
        self.pending.lock().remove(&self.req_id);
    }

    /// Blocks until the response arrives or this request's deadline
    /// passes. Consumes the handle.
    pub fn wait(mut self) -> Result<Response, ClientError> {
        let timeout = self.deadline.saturating_duration_since(Instant::now());
        let result = match self.rx.recv_timeout(timeout) {
            Ok(resp) => {
                self.metrics
                    .record_rtt(self.type_name, self.start.elapsed().as_micros() as u64);
                Ok(resp)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ClientError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ClientError::Closed),
        };
        self.settle();
        result
    }

    /// Non-blocking check: `Some(outcome)` exactly once when the reply
    /// lands (or its deadline passes), `None` while still in flight and
    /// after the outcome has been delivered. This is the primitive that
    /// lets a windowed batch driver sweep many in-flight requests
    /// without blocking on any single one.
    pub fn poll(&mut self) -> Option<Result<Response, ClientError>> {
        if self.resolved {
            return None;
        }
        match self.rx.try_recv() {
            Ok(resp) => {
                self.metrics
                    .record_rtt(self.type_name, self.start.elapsed().as_micros() as u64);
                self.settle();
                Some(Ok(resp))
            }
            Err(mpsc::TryRecvError::Empty) => {
                if Instant::now() >= self.deadline {
                    self.settle();
                    Some(Err(ClientError::Timeout))
                } else {
                    None
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                self.settle();
                Some(Err(ClientError::Closed))
            }
        }
    }
}

impl Drop for PendingReply {
    fn drop(&mut self) {
        if !self.resolved {
            self.pending.lock().remove(&self.req_id);
        }
    }
}

/// A blocking request/response client over a [`Transport`] endpoint.
///
/// Dropping the client shuts the dispatcher thread and the underlying
/// transport down.
pub struct WireClient<T: Transport> {
    transport: Arc<T>,
    pending: Pending,
    next_req: AtomicU64,
    metrics: Arc<NetMetrics>,
    stop: Arc<AtomicBool>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl<T: Transport> WireClient<T> {
    /// Wraps `transport` as a client endpoint, recording round-trip
    /// times into `metrics`.
    pub fn new(transport: T, metrics: Arc<NetMetrics>) -> Self {
        let transport = Arc::new(transport);
        let pending: Pending = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let dispatcher = {
            let transport = Arc::clone(&transport);
            let pending = Arc::clone(&pending);
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || dispatch_loop(&*transport, &pending, &stop, &metrics))
        };
        WireClient {
            transport,
            pending,
            next_req: AtomicU64::new(1),
            metrics,
            stop,
            dispatcher: Mutex::new(Some(dispatcher)),
        }
    }

    /// The client's own address (responses come back here).
    pub fn local_addr(&self) -> Addr {
        self.transport.local_addr()
    }

    /// Sends `body` to `node` and blocks until the matching response
    /// arrives or `timeout` elapses. Records the round-trip time under
    /// `net.rtt_us.<request type>`. The request travels untraced;
    /// see [`WireClient::call_traced`] to start a causal trace.
    pub fn call(
        &self,
        node: Addr,
        body: Request,
        timeout: Duration,
    ) -> Result<Response, ClientError> {
        self.call_traced(node, body, timeout, TraceCtx::NONE)
    }

    /// [`WireClient::call`], but the request's envelope carries `trace`
    /// — typically [`TraceCtx::root`] with a fresh trace id, making this
    /// call the root span of a causally-linked cross-node span tree
    /// that `d2-node trace <id>` can later reassemble from the nodes'
    /// flight recorders.
    pub fn call_traced(
        &self,
        node: Addr,
        body: Request,
        timeout: Duration,
        trace: TraceCtx,
    ) -> Result<Response, ClientError> {
        self.submit_traced(node, body, timeout, trace)?.wait()
    }

    /// Sends `body` to `node` and returns immediately with a
    /// [`PendingReply`] handle; the response (or a timeout after
    /// `timeout`) is harvested later via [`PendingReply::wait`] or
    /// [`PendingReply::poll`]. Errors here mean the request never left
    /// this process (dead peer, closed client). The request travels
    /// untraced; see [`WireClient::submit_traced`].
    pub fn submit(
        &self,
        node: Addr,
        body: Request,
        timeout: Duration,
    ) -> Result<PendingReply, ClientError> {
        self.submit_traced(node, body, timeout, TraceCtx::NONE)
    }

    /// [`WireClient::submit`] with an explicit trace context on the
    /// request envelope.
    pub fn submit_traced(
        &self,
        node: Addr,
        body: Request,
        timeout: Duration,
        trace: TraceCtx,
    ) -> Result<PendingReply, ClientError> {
        if self.stop.load(Ordering::Acquire) {
            return Err(ClientError::Closed);
        }
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let type_name = body.type_name();
        let (tx, rx) = mpsc::channel();
        self.pending.lock().insert(req_id, tx);
        let msg = WireMsg::Request {
            req_id,
            from: self.transport.local_addr(),
            body,
        };
        let start = Instant::now();
        if let Err(e) = self.transport.send_traced(node, &msg, trace) {
            self.pending.lock().remove(&req_id);
            return Err(match e {
                TransportError::PeerUnreachable(a) => ClientError::Unreachable(a),
                TransportError::Closed => ClientError::Closed,
            });
        }
        Ok(PendingReply {
            rx,
            pending: Arc::clone(&self.pending),
            metrics: Arc::clone(&self.metrics),
            req_id,
            type_name,
            start,
            deadline: start + timeout,
            resolved: false,
        })
    }

    /// Fire-and-forget: sends `body` without waiting for any response.
    pub fn notify(&self, node: Addr, body: Request) -> Result<(), ClientError> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
        let msg = WireMsg::Request {
            req_id,
            from: self.transport.local_addr(),
            body,
        };
        match self.transport.send(node, &msg) {
            Ok(()) => Ok(()),
            Err(TransportError::PeerUnreachable(a)) => Err(ClientError::Unreachable(a)),
            Err(TransportError::Closed) => Err(ClientError::Closed),
        }
    }

    /// Stops the dispatcher and shuts the transport down. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.transport.shutdown();
        if let Some(h) = self.dispatcher.lock().take() {
            let _ = h.join();
        }
        self.pending.lock().clear();
    }
}

impl<T: Transport> Drop for WireClient<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatch_loop<T: Transport>(
    transport: &T,
    pending: &Pending,
    stop: &AtomicBool,
    metrics: &NetMetrics,
) {
    while !stop.load(Ordering::Acquire) {
        match transport.recv_timeout(Duration::from_millis(100)) {
            Ok((WireMsg::Response { req_id, body }, _)) => {
                match pending.lock().remove(&req_id) {
                    Some(tx) => {
                        let _ = tx.send(body); // caller may have timed out
                    }
                    None => {
                        // A reply whose caller already gave up (or a
                        // confused peer). Counted, not dropped silently:
                        // a storm of these means the cluster answers
                        // slower than clients are willing to wait.
                        metrics.orphan_response();
                    }
                }
            }
            Ok(_) => {} // clients ignore ring traffic and stray requests
            Err(RecvError::Timeout) => {}
            Err(RecvError::Closed) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::ChannelHub;
    use d2_types::Key;

    /// A toy responder: answers every Get with an empty block.
    fn spawn_echo_node(hub: &ChannelHub) -> (Addr, JoinHandle<()>) {
        let t = hub.open();
        let addr = t.local_addr();
        let h = std::thread::spawn(move || loop {
            match t.recv_timeout(Duration::from_millis(50)) {
                Ok((
                    WireMsg::Request {
                        req_id,
                        from,
                        body: Request::Get { .. },
                    },
                    _,
                )) => {
                    let resp = WireMsg::Response {
                        req_id,
                        body: Response::Block { data: None },
                    };
                    let _ = t.send(from, &resp);
                }
                Ok((
                    WireMsg::Request {
                        req_id,
                        from,
                        body: Request::Shutdown,
                    },
                    _,
                )) => {
                    let _ = t.send(
                        from,
                        &WireMsg::Response {
                            req_id,
                            body: Response::ShutdownAck,
                        },
                    );
                    return;
                }
                Ok(_) => {}
                Err(RecvError::Timeout) => {}
                Err(RecvError::Closed) => return,
            }
        });
        (addr, h)
    }

    #[test]
    fn call_round_trips_and_records_rtt() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let (node, h) = spawn_echo_node(&hub);
        let client = WireClient::new(hub.open(), metrics.clone());
        let resp = client
            .call(
                node,
                Request::Get {
                    key: Key::from_u64(7),
                },
                Duration::from_secs(2),
            )
            .unwrap();
        assert_eq!(resp, Response::Block { data: None });
        assert_eq!(
            client
                .call(node, Request::Shutdown, Duration::from_secs(2))
                .unwrap(),
            Response::ShutdownAck
        );
        h.join().unwrap();
        let reg = metrics.snapshot();
        assert_eq!(reg.histogram("net.rtt_us.get").unwrap().count(), 1);
        assert_eq!(reg.histogram("net.rtt_us.shutdown").unwrap().count(), 1);
    }

    #[test]
    fn call_to_dead_node_is_unreachable_not_hang() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let dead = hub.open();
        let dead_addr = dead.local_addr();
        dead.shutdown();
        drop(dead);
        let client = WireClient::new(hub.open(), metrics);
        let t0 = Instant::now();
        assert_eq!(
            client.call(dead_addr, Request::Status, Duration::from_secs(5)),
            Err(ClientError::Unreachable(dead_addr))
        );
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn late_response_counts_as_orphan() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let slow = hub.open();
        let slow_addr = slow.local_addr();
        let h = std::thread::spawn(move || {
            // Reply well after the caller's 30ms deadline.
            let (msg, _) = slow.recv_timeout(Duration::from_secs(5)).unwrap();
            if let WireMsg::Request { req_id, from, .. } = msg {
                std::thread::sleep(Duration::from_millis(150));
                let _ = slow.send(
                    from,
                    &WireMsg::Response {
                        req_id,
                        body: Response::Block { data: None },
                    },
                );
            }
        });
        let client = WireClient::new(hub.open(), metrics.clone());
        assert_eq!(
            client.call(slow_addr, Request::Status, Duration::from_millis(30)),
            Err(ClientError::Timeout)
        );
        h.join().unwrap();
        // The dispatcher sees the late reply with no pending caller.
        let deadline = Instant::now() + Duration::from_secs(5);
        while metrics.snapshot().counter("net.orphan_responses") == 0 {
            assert!(Instant::now() < deadline, "orphan never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(metrics.snapshot().counter("net.orphan_responses"), 1);
    }

    #[test]
    fn pipelined_replies_resolve_out_of_order_without_hol_blocking() {
        const K: usize = 8;
        const DROPPED: u64 = 3; // key whose response is never sent
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let node = hub.open();
        let node_addr = node.local_addr();
        // Collect all K requests first, then answer them in *reverse*
        // order, dropping one — an adversarial reordering no serial
        // client would ever see.
        let h = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < K {
                if let (
                    WireMsg::Request {
                        req_id,
                        from,
                        body: Request::Get { key },
                    },
                    _,
                ) = node.recv_timeout(Duration::from_secs(5)).unwrap()
                {
                    got.push((req_id, from, key));
                }
            }
            for (req_id, from, key) in got.into_iter().rev() {
                if key == Key::from_u64(DROPPED) {
                    continue;
                }
                let _ = node.send(
                    from,
                    &WireMsg::Response {
                        req_id,
                        body: Response::Block {
                            data: Some(key.as_bytes().to_vec()),
                        },
                    },
                );
            }
        });
        let client = WireClient::new(hub.open(), metrics);
        let timeout = Duration::from_millis(400);
        let t0 = Instant::now();
        let handles: Vec<PendingReply> = (0..K as u64)
            .map(|i| {
                client
                    .submit(
                        node_addr,
                        Request::Get {
                            key: Key::from_u64(i),
                        },
                        timeout,
                    )
                    .unwrap()
            })
            .collect();
        // Every reply lands on the handle whose key it answers, and the
        // dropped one times out alone — it must not delay the others.
        for (i, h) in handles.into_iter().enumerate() {
            let res = h.wait();
            if i as u64 == DROPPED {
                assert_eq!(res, Err(ClientError::Timeout));
            } else {
                assert_eq!(
                    res,
                    Ok(Response::Block {
                        data: Some(Key::from_u64(i as u64).as_bytes().to_vec())
                    }),
                    "reply routed to the wrong caller for key {i}"
                );
            }
        }
        // All K round trips (incl. one timeout) overlapped: total wall
        // time is about one window, not K serial round trips.
        assert!(
            t0.elapsed() < timeout * 3,
            "pipelined window head-of-line blocked: {:?}",
            t0.elapsed()
        );
        h.join().unwrap();
    }

    #[test]
    fn poll_is_nonblocking_and_resolves_once() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let (node, h) = spawn_echo_node(&hub);
        let client = WireClient::new(hub.open(), metrics);
        let mut p = client
            .submit(
                node,
                Request::Get {
                    key: Key::from_u64(1),
                },
                Duration::from_secs(2),
            )
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let outcome = loop {
            if let Some(res) = p.poll() {
                break res;
            }
            assert!(Instant::now() < deadline, "reply never arrived");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(outcome, Ok(Response::Block { data: None }));
        // The outcome is delivered exactly once.
        assert_eq!(p.poll(), None);
        client
            .call(node, Request::Shutdown, Duration::from_secs(2))
            .unwrap();
        h.join().unwrap();
    }

    #[test]
    fn unanswered_call_times_out() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let silent = hub.open(); // never reads its mailbox
        let client = WireClient::new(hub.open(), metrics);
        assert_eq!(
            client.call(
                silent.local_addr(),
                Request::Status,
                Duration::from_millis(50)
            ),
            Err(ClientError::Timeout)
        );
    }
}
