//! The versioned, length-prefixed binary codec for inter-node traffic.
//!
//! Every frame on the wire is:
//!
//! ```text
//! +------+------+---------+-----+----------------+------------------+
//! | 0x44 | 0x32 | version | tag | payload length | payload ...      |
//! | 'D'  | '2'  |  (1 B)  |(1 B)|  (4 B, BE u32) | (length bytes)   |
//! +------+------+---------+-----+----------------+------------------+
//! ```
//!
//! The two magic bytes reject cross-protocol traffic, the version byte
//! rejects incompatible peers, and the one-byte tag names the message
//! variant so a decoder never has to guess. Payload integers are
//! big-endian; [`Key`]s are their raw 64 bytes; variable-length fields
//! carry explicit counts. Decoding is strict: truncated frames, oversized
//! length prefixes, unknown tags, and trailing bytes are all
//! [`WireError`]s, never panics — a malformed peer costs a closed
//! connection, not a crashed node.
//!
//! # Version 2: the trace block
//!
//! Version 2 frames carry a fixed 17-byte **trace block** at the start
//! of the payload, before the tagged message body:
//!
//! ```text
//! | trace_id (8 B) | span_id (8 B) | hop (1 B) | message body ... |
//! ```
//!
//! The block is the [`TraceCtx`] of the *sending* span: an all-zero
//! trace id means "untraced" and costs nothing downstream. Carrying the
//! context at the envelope level (rather than inside each message
//! variant) means no message body changed shape between v1 and v2, so
//! decoders accept both versions: a v1 payload is exactly a v2 payload
//! minus the trace block, and decodes with [`TraceCtx::NONE`].
//!
//! # Version 3: erasure-coded fragments
//!
//! Version 3 adds three message variants for the erasure-coded
//! redundancy backend — [`Request::PutFragment`],
//! [`Request::GetFragment`], and [`Response::Fragment`] — and changes
//! nothing else: the payload layout (trace block + tagged body) is
//! identical to v2, and every v1/v2 frame decodes exactly as before.
//! The bump only signals that this peer may emit the new tags; a v2
//! peer that never sees a fragment frame interoperates untouched.

use d2_obs::{Histogram, Registry, SpanRecord, TraceCtx};
use d2_ring::messages::{Addr, PeerInfo, RingMsg};
use d2_types::{D2Error, Key, KeyRange, KEY_BYTES};
use std::fmt;

/// First two bytes of every frame: `b"D2"`.
pub const MAGIC: [u8; 2] = [0x44, 0x32];

/// Current protocol version. Bump on any incompatible payload change.
pub const VERSION: u8 = 3;

/// Oldest version this decoder still accepts. v1 frames are v2+ frames
/// without the leading trace block; they decode with [`TraceCtx::NONE`].
pub const MIN_VERSION: u8 = 1;

/// Size of the v2 trace block at the start of every payload:
/// trace id (8) + span id (8) + hop (1).
pub const TRACE_LEN: usize = 17;

/// Bytes before the payload: magic (2) + version (1) + tag (1) + length (4).
pub const HEADER_LEN: usize = 8;

/// Hard cap on a single frame's payload. A length prefix above this is
/// rejected before any allocation, so a hostile 4 GiB length cannot
/// balloon memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Decode failures. Every variant is a clean error a transport can log
/// and recover from (by dropping the connection); none abort the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte was outside [`MIN_VERSION`]..=[`VERSION`].
    BadVersion(u8),
    /// The tag byte named no known message variant.
    UnknownTag(u8),
    /// The frame ended before the announced payload did.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The length prefix exceeded [`MAX_PAYLOAD`].
    Oversized {
        /// The announced payload length.
        len: u64,
    },
    /// The payload decoded cleanly but bytes were left over.
    Trailing {
        /// Undecoded bytes at the end of the payload.
        extra: usize,
    },
    /// A field held a structurally invalid value.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(
                f,
                "unsupported wire version {v} (want {MIN_VERSION}..={VERSION})"
            ),
            WireError::UnknownTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after payload"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for D2Error {
    fn from(e: WireError) -> Self {
        D2Error::Codec(e.to_string())
    }
}

/// A client request carried inside [`WireMsg::Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Locate the owner of `key` via a recursive ring lookup.
    Lookup {
        /// The key to locate.
        key: Key,
    },
    /// Store a block here and replicate along the successor chain.
    ///
    /// Each node stores its copy, then forwards the request with `fanout`
    /// decremented and `stored` incremented; the **last** node in the
    /// chain (or the first that cannot forward) sends the
    /// [`Response::PutAck`] — so an acked put means every reachable
    /// replica is written, with no fan-out race left for callers to
    /// sleep around.
    Put {
        /// The block's key.
        key: Key,
        /// Further successors that should also store the block.
        fanout: u32,
        /// Copies already written upstream in this chain.
        stored: u32,
        /// The block payload.
        data: Vec<u8>,
    },
    /// Fetch the block stored here under `key`.
    Get {
        /// The block's key.
        key: Key,
    },
    /// Store one erasure-coded fragment of a block here (v3). Sent by
    /// the key's owner to the other members of the fragment group; the
    /// receiver stores exactly this fragment (no chaining) and acks
    /// with [`Response::PutAck`]`{ replicas: 1 }`.
    PutFragment {
        /// The block's key (shared by all fragments of the block).
        key: Key,
        /// This fragment's index in `0..total` (systematic: indices
        /// `< k` are data shards, the rest parity).
        index: u8,
        /// Total fragments in the group (the policy's `n`).
        total: u8,
        /// Write generation; a receiver drops fragments older than the
        /// one it already holds.
        generation: u64,
        /// Sender-computed fragment checksum, verified end-to-end by
        /// the receiver before the fragment is stored.
        check: u64,
        /// The original (pre-encoding) block length, needed to trim
        /// zero padding after decode.
        block_len: u32,
        /// The fragment payload.
        data: Vec<u8>,
    },
    /// Fetch (or probe for) the fragment stored here under `key` (v3).
    /// Answered with [`Response::Fragment`].
    GetFragment {
        /// The block's key.
        key: Key,
        /// `true` fetches the fragment bytes; `false` is a cheap
        /// presence probe (the reply's `data` stays empty) used by the
        /// lazy repair scanner.
        want_data: bool,
    },
    /// Report ring state (predecessor, successors, block count).
    Status,
    /// Dump this node's metrics registry and flight recorder
    /// ([`Response::Metrics`]). This is the remote-scrape request behind
    /// `d2-node top` and `d2-node trace`; it replaces exit-time-only
    /// metric export.
    MetricsDump,
    /// Stop this node's event loop (graceful shutdown).
    Shutdown,
}

impl Request {
    /// Short stable name of this request kind, used as the metric label
    /// for per-message-type RTT histograms (`net.rtt_us.<name>`).
    pub fn type_name(&self) -> &'static str {
        match self {
            Request::Lookup { .. } => "lookup",
            Request::Put { .. } => "put",
            Request::Get { .. } => "get",
            Request::PutFragment { .. } => "put_fragment",
            Request::GetFragment { .. } => "get_fragment",
            Request::Status => "status",
            Request::MetricsDump => "metrics_dump",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One node's view of the ring, as carried by [`Response::Status`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireStatus {
    /// The responding node's identity.
    pub me: PeerInfo,
    /// Its predecessor, if known.
    pub predecessor: Option<PeerInfo>,
    /// Its successor list.
    pub successors: Vec<PeerInfo>,
    /// Blocks stored locally.
    pub blocks: u64,
}

/// One histogram on the wire: full log-bucket counts, not just the
/// summary quantiles, so the scraper can [`Histogram::merge`] per-node
/// distributions and compute *cluster-wide* percentiles exactly as if
/// every sample had been recorded in one place.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireHistogram {
    /// Metric name (`"net.rtt_us.put"`, `"node.lookup_us"`, ...).
    pub name: String,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Log-bucket counts, as [`Histogram::buckets`] exposes them.
    pub buckets: Vec<u64>,
}

/// A node's full metrics dump, carried by [`Response::Metrics`]: the
/// registry (counters, gauges, histograms with complete buckets) plus
/// the bounded flight recorder of recent and notable spans.
///
/// Gauges travel as raw `f64` bit patterns so the message type stays
/// `Eq` and the encoding is byte-exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireMetrics {
    /// Counter values by name, in name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name (as [`f64::to_bits`]), in name order.
    pub gauges: Vec<(String, u64)>,
    /// Histograms with full bucket vectors, in name order.
    pub histograms: Vec<WireHistogram>,
    /// The node's flight-recorder snapshot: recent spans plus retained
    /// slow/failed ones, deduplicated and time-ordered.
    pub spans: Vec<SpanRecord>,
}

impl WireMetrics {
    /// Captures `reg` plus a span snapshot into wire form.
    pub fn from_registry(reg: &Registry, spans: Vec<SpanRecord>) -> WireMetrics {
        WireMetrics {
            counters: reg.counters().map(|(k, v)| (k.to_string(), v)).collect(),
            gauges: reg
                .gauges()
                .map(|(k, v)| (k.to_string(), v.to_bits()))
                .collect(),
            histograms: reg
                .histograms()
                .map(|(k, h)| WireHistogram {
                    name: k.to_string(),
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min(),
                    max: h.max(),
                    buckets: h.buckets().to_vec(),
                })
                .collect(),
            spans,
        }
    }

    /// Rebuilds a [`Registry`] from the dump. Histograms whose parts are
    /// inconsistent (a hostile or buggy peer) are rejected as
    /// [`WireError::Malformed`] rather than silently skewing aggregates.
    pub fn to_registry(&self) -> Result<Registry, WireError> {
        let mut reg = Registry::new();
        for (k, v) in &self.counters {
            reg.add(k, *v);
        }
        for (k, bits) in &self.gauges {
            reg.set_gauge(k, f64::from_bits(*bits));
        }
        for wh in &self.histograms {
            let h = Histogram::from_parts(wh.count, wh.sum, wh.min, wh.max, wh.buckets.clone())
                .ok_or(WireError::Malformed("inconsistent histogram parts"))?;
            reg.merge_histogram(&wh.name, &h);
        }
        Ok(reg)
    }
}

/// A reply to a [`Request`], correlated by `req_id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Lookup`].
    Owner {
        /// The owner of the looked-up key.
        owner: PeerInfo,
        /// Forwarding hops the lookup took.
        hops: u32,
    },
    /// Reply to [`Request::Put`], sent by the end of the replica chain.
    PutAck {
        /// Copies written along the chain (double-counts only when the
        /// chain wraps a ring smaller than the replication factor).
        replicas: u32,
    },
    /// Reply to [`Request::Get`].
    Block {
        /// The block, or `None` when this node does not hold it.
        data: Option<Vec<u8>>,
    },
    /// Reply to [`Request::GetFragment`] (v3).
    Fragment {
        /// Whether this node holds a fragment of the key.
        has: bool,
        /// The held fragment's index (0 when `has` is false).
        index: u8,
        /// The held fragment's write generation (0 when `has` is false).
        generation: u64,
        /// The fragment checksum, carried so the gatherer can verify
        /// integrity end-to-end before decoding (0 when `has` is false).
        check: u64,
        /// The original block length recorded at put time (0 when
        /// `has` is false).
        block_len: u32,
        /// The fragment bytes; empty on a presence probe
        /// (`want_data: false`) or when `has` is false.
        data: Vec<u8>,
    },
    /// Reply to [`Request::Status`].
    Status(WireStatus),
    /// Reply to [`Request::MetricsDump`]: the node's registry and
    /// flight-recorder snapshot.
    Metrics(Box<WireMetrics>),
    /// Reply to [`Request::Shutdown`], sent just before the node exits.
    ShutdownAck,
}

/// Everything that travels between processes: ring protocol traffic plus
/// the client request/response envelope.
///
/// Requests carry the sender's transport address so the far end of a
/// replica chain can reply directly to the original client.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Ring maintenance / lookup traffic between nodes.
    Ring(RingMsg),
    /// A client-originated request.
    Request {
        /// Correlates the eventual [`WireMsg::Response`].
        req_id: u64,
        /// Transport address the response should be sent to.
        from: Addr,
        /// The request body.
        body: Request,
    },
    /// The reply to a [`WireMsg::Request`].
    Response {
        /// Echo of the request's `req_id`.
        req_id: u64,
        /// The response body.
        body: Response,
    },
}

impl WireMsg {
    /// The frame tag byte identifying this message variant.
    pub fn tag(&self) -> u8 {
        match self {
            WireMsg::Ring(m) => match m {
                RingMsg::FindOwner { .. } => TAG_FIND_OWNER,
                RingMsg::OwnerIs { .. } => TAG_OWNER_IS,
                RingMsg::Join { .. } => TAG_JOIN,
                RingMsg::JoinAck { .. } => TAG_JOIN_ACK,
                RingMsg::GetNeighbors { .. } => TAG_GET_NEIGHBORS,
                RingMsg::Neighbors { .. } => TAG_NEIGHBORS,
                RingMsg::Notify { .. } => TAG_NOTIFY,
            },
            WireMsg::Request { body, .. } => match body {
                Request::Lookup { .. } => TAG_REQ_LOOKUP,
                Request::Put { .. } => TAG_REQ_PUT,
                Request::Get { .. } => TAG_REQ_GET,
                Request::PutFragment { .. } => TAG_REQ_PUT_FRAGMENT,
                Request::GetFragment { .. } => TAG_REQ_GET_FRAGMENT,
                Request::Status => TAG_REQ_STATUS,
                Request::MetricsDump => TAG_REQ_METRICS,
                Request::Shutdown => TAG_REQ_SHUTDOWN,
            },
            WireMsg::Response { body, .. } => match body {
                Response::Owner { .. } => TAG_RESP_OWNER,
                Response::PutAck { .. } => TAG_RESP_PUT_ACK,
                Response::Block { .. } => TAG_RESP_BLOCK,
                Response::Fragment { .. } => TAG_RESP_FRAGMENT,
                Response::Status(_) => TAG_RESP_STATUS,
                Response::Metrics(_) => TAG_RESP_METRICS,
                Response::ShutdownAck => TAG_RESP_SHUTDOWN_ACK,
            },
        }
    }

    /// Short stable name of this message variant, used as a metric label.
    pub fn type_name(&self) -> &'static str {
        match self {
            WireMsg::Ring(m) => match m {
                RingMsg::FindOwner { .. } => "find_owner",
                RingMsg::OwnerIs { .. } => "owner_is",
                RingMsg::Join { .. } => "join",
                RingMsg::JoinAck { .. } => "join_ack",
                RingMsg::GetNeighbors { .. } => "get_neighbors",
                RingMsg::Neighbors { .. } => "neighbors",
                RingMsg::Notify { .. } => "notify",
            },
            WireMsg::Request { body, .. } => body.type_name(),
            WireMsg::Response { body, .. } => match body {
                Response::Owner { .. } => "owner",
                Response::PutAck { .. } => "put_ack",
                Response::Block { .. } => "block",
                Response::Fragment { .. } => "fragment",
                Response::Status(_) => "status",
                Response::Metrics(_) => "metrics",
                Response::ShutdownAck => "shutdown_ack",
            },
        }
    }
}

const TAG_FIND_OWNER: u8 = 0x01;
const TAG_OWNER_IS: u8 = 0x02;
const TAG_JOIN: u8 = 0x03;
const TAG_JOIN_ACK: u8 = 0x04;
const TAG_GET_NEIGHBORS: u8 = 0x05;
const TAG_NEIGHBORS: u8 = 0x06;
const TAG_NOTIFY: u8 = 0x07;
const TAG_REQ_LOOKUP: u8 = 0x10;
const TAG_REQ_PUT: u8 = 0x11;
const TAG_REQ_GET: u8 = 0x12;
const TAG_REQ_STATUS: u8 = 0x13;
const TAG_REQ_SHUTDOWN: u8 = 0x14;
const TAG_REQ_METRICS: u8 = 0x15;
const TAG_REQ_PUT_FRAGMENT: u8 = 0x16;
const TAG_REQ_GET_FRAGMENT: u8 = 0x17;
const TAG_RESP_OWNER: u8 = 0x20;
const TAG_RESP_PUT_ACK: u8 = 0x21;
const TAG_RESP_BLOCK: u8 = 0x22;
const TAG_RESP_STATUS: u8 = 0x23;
const TAG_RESP_SHUTDOWN_ACK: u8 = 0x24;
const TAG_RESP_METRICS: u8 = 0x25;
const TAG_RESP_FRAGMENT: u8 = 0x26;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Enc<'a>(&'a mut Vec<u8>);

impl Enc<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn key(&mut self, k: &Key) {
        self.0.extend_from_slice(k.as_bytes());
    }
    fn addr(&mut self, a: Addr) {
        self.u64(a as u64);
    }
    fn peer(&mut self, p: &PeerInfo) {
        self.key(&p.id);
        self.addr(p.addr);
    }
    fn opt_peer(&mut self, p: &Option<PeerInfo>) {
        match p {
            Some(p) => {
                self.u8(1);
                self.peer(p);
            }
            None => self.u8(0),
        }
    }
    fn peers(&mut self, ps: &[PeerInfo]) {
        debug_assert!(ps.len() <= u16::MAX as usize);
        self.u16(ps.len() as u16);
        for p in ps {
            self.peer(p);
        }
    }
    fn range(&mut self, r: &KeyRange) {
        self.key(r.start());
        self.key(r.end());
    }
    fn bytes(&mut self, b: &[u8]) {
        debug_assert!(b.len() <= MAX_PAYLOAD);
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
    fn opt_bytes(&mut self, b: &Option<Vec<u8>>) {
        match b {
            Some(b) => {
                self.u8(1);
                self.bytes(b);
            }
            None => self.u8(0),
        }
    }
    fn str_(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.0.extend_from_slice(s.as_bytes());
    }
    fn span(&mut self, s: &SpanRecord) {
        self.u64(s.trace_id);
        self.u64(s.span_id);
        self.u64(s.parent_span_id);
        self.u8(s.hop);
        self.u64(s.node);
        self.u64(s.start_us);
        self.u64(s.dur_us);
        self.u8(s.ok as u8);
        self.str_(&s.op);
        self.str_(&s.detail);
    }
    fn metrics(&mut self, m: &WireMetrics) {
        self.u32(m.counters.len() as u32);
        for (k, v) in &m.counters {
            self.str_(k);
            self.u64(*v);
        }
        self.u32(m.gauges.len() as u32);
        for (k, bits) in &m.gauges {
            self.str_(k);
            self.u64(*bits);
        }
        self.u32(m.histograms.len() as u32);
        for h in &m.histograms {
            self.str_(&h.name);
            self.u64(h.count);
            self.u64(h.sum);
            self.u64(h.min);
            self.u64(h.max);
            self.u16(h.buckets.len() as u16);
            for b in &h.buckets {
                self.u64(*b);
            }
        }
        self.u32(m.spans.len() as u32);
        for s in &m.spans {
            self.span(s);
        }
    }
}

/// Encodes `msg` as one complete untraced frame (header + payload).
/// Equivalent to [`encode_traced`] with [`TraceCtx::NONE`].
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    encode_traced(msg, TraceCtx::NONE)
}

/// Encodes `msg` as one complete v2 frame carrying `trace` in the
/// payload's leading trace block.
pub fn encode_traced(msg: &WireMsg, trace: TraceCtx) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + TRACE_LEN + 64);
    encode_traced_into(&mut buf, msg, trace);
    buf
}

/// Appends one complete untraced frame to `buf`, returning the frame's
/// size in bytes. Equivalent to [`encode_traced_into`] with
/// [`TraceCtx::NONE`].
pub fn encode_into(buf: &mut Vec<u8>, msg: &WireMsg) -> usize {
    encode_traced_into(buf, msg, TraceCtx::NONE)
}

/// Appends one complete v2 frame (header + trace block + payload) to
/// `buf`, returning the frame's size in bytes.
///
/// The output is byte-identical to [`encode_traced`]; the difference is
/// allocation. `buf` is *appended to*, never cleared, which serves both
/// zero-copy idioms: a per-peer scratch buffer cleared by the caller
/// between frames (steady-state sends allocate nothing once the buffer
/// has grown to the working frame size), and write coalescing, where
/// several frames accumulate in one buffer and leave in one syscall.
pub fn encode_traced_into(buf: &mut Vec<u8>, msg: &WireMsg, trace: TraceCtx) -> usize {
    let start = buf.len();
    let mut e = Enc(buf);
    e.0.extend_from_slice(&MAGIC);
    e.u8(VERSION);
    e.u8(msg.tag());
    e.u32(0); // length backpatched below
    e.u64(trace.trace_id);
    e.u64(trace.span_id);
    e.u8(trace.hop);
    match msg {
        WireMsg::Ring(m) => encode_ring(&mut e, m),
        WireMsg::Request { req_id, from, body } => {
            e.u64(*req_id);
            e.addr(*from);
            match body {
                Request::Lookup { key } => e.key(key),
                Request::Put {
                    key,
                    fanout,
                    stored,
                    data,
                } => {
                    e.key(key);
                    e.u32(*fanout);
                    e.u32(*stored);
                    e.bytes(data);
                }
                Request::Get { key } => e.key(key),
                Request::PutFragment {
                    key,
                    index,
                    total,
                    generation,
                    check,
                    block_len,
                    data,
                } => {
                    e.key(key);
                    e.u8(*index);
                    e.u8(*total);
                    e.u64(*generation);
                    e.u64(*check);
                    e.u32(*block_len);
                    e.bytes(data);
                }
                Request::GetFragment { key, want_data } => {
                    e.key(key);
                    e.u8(*want_data as u8);
                }
                Request::Status | Request::MetricsDump | Request::Shutdown => {}
            }
        }
        WireMsg::Response { req_id, body } => {
            e.u64(*req_id);
            match body {
                Response::Owner { owner, hops } => {
                    e.peer(owner);
                    e.u32(*hops);
                }
                Response::PutAck { replicas } => e.u32(*replicas),
                Response::Block { data } => e.opt_bytes(data),
                Response::Fragment {
                    has,
                    index,
                    generation,
                    check,
                    block_len,
                    data,
                } => {
                    e.u8(*has as u8);
                    e.u8(*index);
                    e.u64(*generation);
                    e.u64(*check);
                    e.u32(*block_len);
                    e.bytes(data);
                }
                Response::Status(s) => {
                    e.peer(&s.me);
                    e.opt_peer(&s.predecessor);
                    e.peers(&s.successors);
                    e.u64(s.blocks);
                }
                Response::Metrics(m) => e.metrics(m),
                Response::ShutdownAck => {}
            }
        }
    }
    let len = (e.0.len() - start - HEADER_LEN) as u32;
    e.0[start + 4..start + 8].copy_from_slice(&len.to_be_bytes());
    e.0.len() - start
}

fn encode_ring(e: &mut Enc<'_>, m: &RingMsg) {
    match m {
        RingMsg::FindOwner {
            target,
            origin,
            req_id,
            hops,
        } => {
            e.key(target);
            e.addr(*origin);
            e.u64(*req_id);
            e.u32(*hops);
        }
        RingMsg::OwnerIs {
            req_id,
            owner,
            range,
            successors,
            hops,
        } => {
            e.u64(*req_id);
            e.peer(owner);
            e.range(range);
            e.peers(successors);
            e.u32(*hops);
        }
        RingMsg::Join { joiner, hops } => {
            e.peer(joiner);
            e.u32(*hops);
        }
        RingMsg::JoinAck {
            successor,
            predecessor,
            successors,
        } => {
            e.peer(successor);
            e.opt_peer(predecessor);
            e.peers(successors);
        }
        RingMsg::GetNeighbors { from } => e.addr(*from),
        RingMsg::Neighbors {
            me,
            predecessor,
            successors,
        } => {
            e.peer(me);
            e.opt_peer(predecessor);
            e.peers(successors);
        }
        RingMsg::Notify { candidate } => e.peer(candidate),
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.buf.len() - self.pos;
        if got < n {
            return Err(WireError::Truncated { needed: n, got });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn key(&mut self) -> Result<Key, WireError> {
        let raw: [u8; KEY_BYTES] = self.take(KEY_BYTES)?.try_into().unwrap();
        Ok(Key::from_bytes(raw))
    }
    fn addr(&mut self) -> Result<Addr, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed("addr exceeds usize"))
    }
    fn peer(&mut self) -> Result<PeerInfo, WireError> {
        Ok(PeerInfo {
            id: self.key()?,
            addr: self.addr()?,
        })
    }
    fn opt_peer(&mut self) -> Result<Option<PeerInfo>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.peer()?)),
            _ => Err(WireError::Malformed("option flag must be 0 or 1")),
        }
    }
    fn peers(&mut self) -> Result<Vec<PeerInfo>, WireError> {
        let n = self.u16()? as usize;
        // Each peer is 72 bytes; reject counts the remaining buffer
        // cannot possibly hold before allocating.
        if n * (KEY_BYTES + 8) > self.buf.len() - self.pos {
            return Err(WireError::Truncated {
                needed: n * (KEY_BYTES + 8),
                got: self.buf.len() - self.pos,
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.peer()?);
        }
        Ok(out)
    }
    fn range(&mut self) -> Result<KeyRange, WireError> {
        Ok(KeyRange::new(self.key()?, self.key()?))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            _ => Err(WireError::Malformed("option flag must be 0 or 1")),
        }
    }
    fn str_(&mut self) -> Result<String, WireError> {
        let n = self.u16()? as usize;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed("string not utf-8"))
    }
    fn span(&mut self) -> Result<SpanRecord, WireError> {
        Ok(SpanRecord {
            trace_id: self.u64()?,
            span_id: self.u64()?,
            parent_span_id: self.u64()?,
            hop: self.u8()?,
            node: self.u64()?,
            start_us: self.u64()?,
            dur_us: self.u64()?,
            ok: match self.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("bool flag must be 0 or 1")),
            },
            op: self.str_()?,
            detail: self.str_()?,
        })
    }
    /// Rejects a claimed element count the remaining buffer cannot
    /// possibly hold (each element being at least `min_size` bytes),
    /// before any allocation.
    fn check_count(&self, n: usize, min_size: usize) -> Result<(), WireError> {
        let got = self.buf.len() - self.pos;
        if n.saturating_mul(min_size) > got {
            return Err(WireError::Truncated {
                needed: n * min_size,
                got,
            });
        }
        Ok(())
    }
    fn metrics(&mut self) -> Result<WireMetrics, WireError> {
        let nc = self.u32()? as usize;
        self.check_count(nc, 10)?;
        let mut counters = Vec::with_capacity(nc);
        for _ in 0..nc {
            counters.push((self.str_()?, self.u64()?));
        }
        let ng = self.u32()? as usize;
        self.check_count(ng, 10)?;
        let mut gauges = Vec::with_capacity(ng);
        for _ in 0..ng {
            gauges.push((self.str_()?, self.u64()?));
        }
        let nh = self.u32()? as usize;
        self.check_count(nh, 36)?;
        let mut histograms = Vec::with_capacity(nh);
        for _ in 0..nh {
            let name = self.str_()?;
            let (count, sum, min, max) = (self.u64()?, self.u64()?, self.u64()?, self.u64()?);
            let nb = self.u16()? as usize;
            self.check_count(nb, 8)?;
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                buckets.push(self.u64()?);
            }
            histograms.push(WireHistogram {
                name,
                count,
                sum,
                min,
                max,
                buckets,
            });
        }
        let ns = self.u32()? as usize;
        self.check_count(ns, 54)?;
        let mut spans = Vec::with_capacity(ns);
        for _ in 0..ns {
            spans.push(self.span()?);
        }
        Ok(WireMetrics {
            counters,
            gauges,
            histograms,
            spans,
        })
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Trailing {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Validates an 8-byte frame header, returning
/// `(version, tag, payload length)`.
///
/// Transports read exactly [`HEADER_LEN`] bytes, call this, then read the
/// returned number of payload bytes and hand them (with the version) to
/// [`decode_payload`]. Any version in [`MIN_VERSION`]..=[`VERSION`] is
/// accepted; the version decides whether the payload starts with a
/// trace block.
pub fn decode_header(hdr: &[u8; HEADER_LEN]) -> Result<(u8, u8, usize), WireError> {
    if hdr[..2] != MAGIC {
        return Err(WireError::BadMagic([hdr[0], hdr[1]]));
    }
    if !(MIN_VERSION..=VERSION).contains(&hdr[2]) {
        return Err(WireError::BadVersion(hdr[2]));
    }
    let len = u32::from_be_bytes(hdr[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len: len as u64 });
    }
    Ok((hdr[2], hdr[3], len))
}

/// Decodes the payload of a `version` frame whose header carried `tag`.
/// The payload must be consumed exactly; trailing bytes are an error.
///
/// v2 payloads start with the 17-byte trace block; v1 payloads have
/// none and decode with [`TraceCtx::NONE`].
pub fn decode_payload(
    version: u8,
    tag: u8,
    payload: &[u8],
) -> Result<(WireMsg, TraceCtx), WireError> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let trace = if version >= 2 {
        TraceCtx {
            trace_id: d.u64()?,
            span_id: d.u64()?,
            hop: d.u8()?,
        }
    } else {
        TraceCtx::NONE
    };
    let msg = match tag {
        TAG_FIND_OWNER => WireMsg::Ring(RingMsg::FindOwner {
            target: d.key()?,
            origin: d.addr()?,
            req_id: d.u64()?,
            hops: d.u32()?,
        }),
        TAG_OWNER_IS => WireMsg::Ring(RingMsg::OwnerIs {
            req_id: d.u64()?,
            owner: d.peer()?,
            range: d.range()?,
            successors: d.peers()?,
            hops: d.u32()?,
        }),
        TAG_JOIN => WireMsg::Ring(RingMsg::Join {
            joiner: d.peer()?,
            hops: d.u32()?,
        }),
        TAG_JOIN_ACK => WireMsg::Ring(RingMsg::JoinAck {
            successor: d.peer()?,
            predecessor: d.opt_peer()?,
            successors: d.peers()?,
        }),
        TAG_GET_NEIGHBORS => WireMsg::Ring(RingMsg::GetNeighbors { from: d.addr()? }),
        TAG_NEIGHBORS => WireMsg::Ring(RingMsg::Neighbors {
            me: d.peer()?,
            predecessor: d.opt_peer()?,
            successors: d.peers()?,
        }),
        TAG_NOTIFY => WireMsg::Ring(RingMsg::Notify {
            candidate: d.peer()?,
        }),
        TAG_REQ_LOOKUP | TAG_REQ_PUT | TAG_REQ_GET | TAG_REQ_PUT_FRAGMENT
        | TAG_REQ_GET_FRAGMENT | TAG_REQ_STATUS | TAG_REQ_METRICS | TAG_REQ_SHUTDOWN => {
            let req_id = d.u64()?;
            let from = d.addr()?;
            let body = match tag {
                TAG_REQ_LOOKUP => Request::Lookup { key: d.key()? },
                TAG_REQ_PUT => Request::Put {
                    key: d.key()?,
                    fanout: d.u32()?,
                    stored: d.u32()?,
                    data: d.bytes()?,
                },
                TAG_REQ_GET => Request::Get { key: d.key()? },
                TAG_REQ_PUT_FRAGMENT => Request::PutFragment {
                    key: d.key()?,
                    index: d.u8()?,
                    total: d.u8()?,
                    generation: d.u64()?,
                    check: d.u64()?,
                    block_len: d.u32()?,
                    data: d.bytes()?,
                },
                TAG_REQ_GET_FRAGMENT => Request::GetFragment {
                    key: d.key()?,
                    want_data: match d.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(WireError::Malformed("bool flag must be 0 or 1")),
                    },
                },
                TAG_REQ_STATUS => Request::Status,
                TAG_REQ_METRICS => Request::MetricsDump,
                _ => Request::Shutdown,
            };
            WireMsg::Request { req_id, from, body }
        }
        TAG_RESP_OWNER
        | TAG_RESP_PUT_ACK
        | TAG_RESP_BLOCK
        | TAG_RESP_FRAGMENT
        | TAG_RESP_STATUS
        | TAG_RESP_METRICS
        | TAG_RESP_SHUTDOWN_ACK => {
            let req_id = d.u64()?;
            let body = match tag {
                TAG_RESP_OWNER => Response::Owner {
                    owner: d.peer()?,
                    hops: d.u32()?,
                },
                TAG_RESP_PUT_ACK => Response::PutAck { replicas: d.u32()? },
                TAG_RESP_BLOCK => Response::Block {
                    data: d.opt_bytes()?,
                },
                TAG_RESP_FRAGMENT => Response::Fragment {
                    has: match d.u8()? {
                        0 => false,
                        1 => true,
                        _ => return Err(WireError::Malformed("bool flag must be 0 or 1")),
                    },
                    index: d.u8()?,
                    generation: d.u64()?,
                    check: d.u64()?,
                    block_len: d.u32()?,
                    data: d.bytes()?,
                },
                TAG_RESP_STATUS => Response::Status(WireStatus {
                    me: d.peer()?,
                    predecessor: d.opt_peer()?,
                    successors: d.peers()?,
                    blocks: d.u64()?,
                }),
                TAG_RESP_METRICS => Response::Metrics(Box::new(d.metrics()?)),
                _ => Response::ShutdownAck,
            };
            WireMsg::Response { req_id, body }
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    d.finish()?;
    Ok((msg, trace))
}

/// Decodes one complete frame, discarding the trace block. Equivalent to
/// `decode_traced(frame).map(|(msg, _)| msg)`.
pub fn decode(frame: &[u8]) -> Result<WireMsg, WireError> {
    decode_traced(frame).map(|(msg, _)| msg)
}

/// Decodes one complete frame (header + payload) produced by
/// [`encode_traced`], returning the message and its trace context.
///
/// The frame must contain exactly one message; leftover bytes after the
/// announced payload are a [`WireError::Trailing`] error.
pub fn decode_traced(frame: &[u8]) -> Result<(WireMsg, TraceCtx), WireError> {
    if frame.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: frame.len(),
        });
    }
    let hdr: [u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();
    let (version, tag, len) = decode_header(&hdr)?;
    let rest = &frame[HEADER_LEN..];
    if rest.len() < len {
        return Err(WireError::Truncated {
            needed: len,
            got: rest.len(),
        });
    }
    if rest.len() > len {
        return Err(WireError::Trailing {
            extra: rest.len() - len,
        });
    }
    decode_payload(version, tag, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(f: f64, addr: Addr) -> PeerInfo {
        PeerInfo {
            id: Key::from_fraction(f),
            addr,
        }
    }

    #[test]
    fn ring_msgs_round_trip() {
        let msgs = [
            WireMsg::Ring(RingMsg::FindOwner {
                target: Key::from_fraction(0.3),
                origin: 7,
                req_id: 42,
                hops: 3,
            }),
            WireMsg::Ring(RingMsg::OwnerIs {
                req_id: 42,
                owner: peer(0.4, 9),
                range: KeyRange::new(Key::from_fraction(0.3), Key::from_fraction(0.4)),
                successors: vec![peer(0.5, 10), peer(0.6, 11)],
                hops: 4,
            }),
            WireMsg::Ring(RingMsg::Join {
                joiner: peer(0.1, 3),
                hops: 0,
            }),
            WireMsg::Ring(RingMsg::JoinAck {
                successor: peer(0.2, 4),
                predecessor: None,
                successors: vec![],
            }),
            WireMsg::Ring(RingMsg::GetNeighbors { from: 12 }),
            WireMsg::Ring(RingMsg::Neighbors {
                me: peer(0.7, 5),
                predecessor: Some(peer(0.65, 4)),
                successors: vec![peer(0.8, 6)],
            }),
            WireMsg::Ring(RingMsg::Notify {
                candidate: peer(0.9, 8),
            }),
        ];
        for msg in msgs {
            let frame = encode(&msg);
            assert_eq!(decode(&frame).unwrap(), msg, "round trip failed");
        }
    }

    #[test]
    fn request_response_round_trip() {
        let msgs = [
            WireMsg::Request {
                req_id: 1,
                from: 99,
                body: Request::Put {
                    key: Key::from_u64(5),
                    fanout: 2,
                    stored: 1,
                    data: b"block".to_vec(),
                },
            },
            WireMsg::Response {
                req_id: 1,
                body: Response::Block {
                    data: Some(vec![0xab; 1000]),
                },
            },
            WireMsg::Response {
                req_id: 2,
                body: Response::Status(WireStatus {
                    me: peer(0.5, 1),
                    predecessor: Some(peer(0.4, 0)),
                    successors: vec![peer(0.6, 2)],
                    blocks: 17,
                }),
            },
        ];
        for msg in msgs {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn header_rejects_garbage() {
        let good = encode(&WireMsg::Request {
            req_id: 0,
            from: 0,
            body: Request::Status,
        });
        let mut bad_magic = good.clone();
        bad_magic[0] = 0xff;
        assert!(matches!(
            decode(&bad_magic),
            Err(WireError::BadMagic([0xff, _]))
        ));
        let mut bad_version = good.clone();
        bad_version[2] = 9;
        assert_eq!(decode(&bad_version), Err(WireError::BadVersion(9)));
        let mut bad_tag = good.clone();
        bad_tag[3] = 0x7f;
        assert_eq!(decode(&bad_tag), Err(WireError::UnknownTag(0x7f)));
    }

    #[test]
    fn truncation_and_trailing_are_errors() {
        let frame = encode(&WireMsg::Ring(RingMsg::GetNeighbors { from: 3 }));
        for cut in 0..frame.len() {
            assert!(
                matches!(decode(&frame[..cut]), Err(WireError::Truncated { .. })),
                "cut at {cut} must be truncated"
            );
        }
        let mut padded = frame.clone();
        padded.push(0);
        assert_eq!(decode(&padded), Err(WireError::Trailing { extra: 1 }));
    }

    #[test]
    fn encode_into_appends_and_matches_encode() {
        let a = WireMsg::Ring(RingMsg::GetNeighbors { from: 3 });
        let b = WireMsg::Request {
            req_id: 7,
            from: 1,
            body: Request::Put {
                key: Key::from_u64(9),
                fanout: 2,
                stored: 0,
                data: b"coalesce me".to_vec(),
            },
        };
        let trace = TraceCtx::root(0xFEED).child(0x11);
        // Append semantics: two frames in one buffer, each byte-identical
        // to its standalone encoding, with the reported lengths exact.
        let mut buf = Vec::new();
        let la = encode_into(&mut buf, &a);
        let lb = encode_traced_into(&mut buf, &b, trace);
        assert_eq!(la, encode(&a).len());
        assert_eq!(lb, encode_traced(&b, trace).len());
        assert_eq!(&buf[..la], &encode(&a)[..]);
        assert_eq!(&buf[la..], &encode_traced(&b, trace)[..]);
        // Reuse idiom: clear + re-encode allocates nothing further and
        // still produces the canonical frame.
        let cap = buf.capacity();
        buf.clear();
        encode_into(&mut buf, &a);
        assert_eq!(buf, encode(&a));
        assert_eq!(buf.capacity(), cap);
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut frame = encode(&WireMsg::Request {
            req_id: 0,
            from: 0,
            body: Request::Status,
        });
        frame[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(decode(&frame), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn trace_context_rides_the_envelope() {
        let msg = WireMsg::Request {
            req_id: 7,
            from: 3,
            body: Request::Lookup {
                key: Key::from_fraction(0.25),
            },
        };
        let trace = TraceCtx {
            trace_id: 0xDEAD_BEEF,
            span_id: 0x1234,
            hop: 5,
        };
        let frame = encode_traced(&msg, trace);
        assert_eq!(frame[2], VERSION);
        let (got, got_trace) = decode_traced(&frame).unwrap();
        assert_eq!(got, msg);
        assert_eq!(got_trace, trace);
        // Untraced encode carries the all-zero context.
        let (got, got_trace) = decode_traced(&encode(&msg)).unwrap();
        assert_eq!(got, msg);
        assert_eq!(got_trace, TraceCtx::NONE);
        assert!(!got_trace.is_traced());
    }

    #[test]
    fn v1_frames_without_trace_block_still_decode() {
        // A v1 peer sends the same tagged body with no trace block:
        // strip the 17-byte block, rewrite version and length.
        for msg in [
            WireMsg::Ring(RingMsg::GetNeighbors { from: 3 }),
            WireMsg::Request {
                req_id: 9,
                from: 2,
                body: Request::Put {
                    key: Key::from_u64(5),
                    fanout: 2,
                    stored: 0,
                    data: b"v1 block".to_vec(),
                },
            },
            WireMsg::Response {
                req_id: 9,
                body: Response::PutAck { replicas: 3 },
            },
        ] {
            let v2 = encode(&msg);
            let mut v1 = Vec::with_capacity(v2.len() - TRACE_LEN);
            v1.extend_from_slice(&v2[..HEADER_LEN]);
            v1.extend_from_slice(&v2[HEADER_LEN + TRACE_LEN..]);
            v1[2] = 1;
            let len = (v1.len() - HEADER_LEN) as u32;
            v1[4..8].copy_from_slice(&len.to_be_bytes());
            let (got, trace) = decode_traced(&v1).unwrap();
            assert_eq!(got, msg);
            assert_eq!(trace, TraceCtx::NONE);
        }
    }

    #[test]
    fn fragment_msgs_round_trip() {
        let msgs = [
            WireMsg::Request {
                req_id: 11,
                from: 4,
                body: Request::PutFragment {
                    key: Key::from_u64(77),
                    index: 3,
                    total: 8,
                    generation: 2,
                    check: 0xDEAD_BEEF_CAFE_F00D,
                    block_len: 4096,
                    data: vec![0x5a; 512],
                },
            },
            WireMsg::Request {
                req_id: 12,
                from: 4,
                body: Request::GetFragment {
                    key: Key::from_u64(77),
                    want_data: false,
                },
            },
            WireMsg::Response {
                req_id: 12,
                body: Response::Fragment {
                    has: true,
                    index: 3,
                    generation: 2,
                    check: 0xDEAD_BEEF_CAFE_F00D,
                    block_len: 4096,
                    data: vec![],
                },
            },
            WireMsg::Response {
                req_id: 13,
                body: Response::Fragment {
                    has: false,
                    index: 0,
                    generation: 0,
                    check: 0,
                    block_len: 0,
                    data: vec![],
                },
            },
        ];
        for msg in msgs {
            let frame = encode(&msg);
            assert_eq!(frame[2], VERSION);
            assert_eq!(decode(&frame).unwrap(), msg, "round trip failed");
        }
    }

    #[test]
    fn fragment_frames_reject_truncation_and_bad_flags() {
        let frame = encode(&WireMsg::Request {
            req_id: 1,
            from: 0,
            body: Request::GetFragment {
                key: Key::from_u64(5),
                want_data: true,
            },
        });
        for cut in HEADER_LEN..frame.len() {
            assert!(
                matches!(decode(&frame[..cut]), Err(WireError::Truncated { .. })),
                "cut at {cut} must be truncated"
            );
        }
        // A want_data flag of 2 is malformed, not silently truthy.
        let mut bad = frame.clone();
        let n = bad.len();
        bad[n - 1] = 2;
        assert_eq!(
            decode(&bad),
            Err(WireError::Malformed("bool flag must be 0 or 1"))
        );
    }

    #[test]
    fn v2_frames_still_decode_under_v3() {
        // A v2 peer emits the same classic bodies with version byte 2;
        // the v3 decoder must accept them unchanged, trace block intact.
        let msg = WireMsg::Request {
            req_id: 9,
            from: 2,
            body: Request::Put {
                key: Key::from_u64(5),
                fanout: 2,
                stored: 0,
                data: b"v2 block".to_vec(),
            },
        };
        let trace = TraceCtx::root(0xBEEF).child(0x22);
        let mut v2 = encode_traced(&msg, trace);
        v2[2] = 2;
        let (got, got_trace) = decode_traced(&v2).unwrap();
        assert_eq!(got, msg);
        assert_eq!(got_trace, trace);
    }

    #[test]
    fn metrics_dump_round_trips() {
        let mut reg = Registry::new();
        reg.add("net.msgs_in", 42);
        reg.add("net.msgs_out", 40);
        reg.set_gauge("node.ring_position", 0.625);
        reg.set_gauge("node.blocks", 17.0);
        for v in [10u64, 200, 3000, 40_000] {
            reg.observe("node.lookup_us", v);
        }
        let spans = vec![
            SpanRecord {
                trace_id: 1,
                span_id: 2,
                parent_span_id: 0,
                hop: 0,
                node: 3,
                start_us: 100,
                dur_us: 50,
                ok: true,
                op: "put".into(),
                detail: "fanout=2".into(),
            },
            SpanRecord {
                trace_id: 1,
                span_id: 9,
                parent_span_id: 2,
                hop: 1,
                node: 4,
                start_us: 120,
                dur_us: 80_000,
                ok: false,
                op: "put".into(),
                detail: "send failed".into(),
            },
        ];
        let dump = WireMetrics::from_registry(&reg, spans.clone());
        let msg = WireMsg::Request {
            req_id: 5,
            from: 1,
            body: Request::MetricsDump,
        };
        assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        let resp = WireMsg::Response {
            req_id: 5,
            body: Response::Metrics(Box::new(dump.clone())),
        };
        let got = decode(&encode(&resp)).unwrap();
        assert_eq!(got, resp);
        // And the registry reconstructs bit-exactly.
        let WireMsg::Response {
            body: Response::Metrics(m),
            ..
        } = got
        else {
            panic!("wrong variant");
        };
        let rebuilt = m.to_registry().unwrap();
        assert_eq!(rebuilt.snapshot(), reg.snapshot());
        assert_eq!(rebuilt.gauge("node.ring_position"), Some(0.625));
        assert_eq!(m.spans, spans);
    }

    #[test]
    fn hostile_metrics_dump_is_rejected() {
        // Inconsistent histogram parts must not build a registry.
        let dump = WireMetrics {
            counters: vec![],
            gauges: vec![],
            histograms: vec![WireHistogram {
                name: "evil".into(),
                count: 10,
                sum: 5,
                min: 0,
                max: 1,
                buckets: vec![1],
            }],
            spans: vec![],
        };
        assert_eq!(
            dump.to_registry(),
            Err(WireError::Malformed("inconsistent histogram parts"))
        );
        // A frame claiming 2^32-1 spans in a tiny payload fails on the
        // count check, before allocating.
        let msg = WireMsg::Response {
            req_id: 1,
            body: Response::Metrics(Box::default()),
        };
        let mut frame = encode(&msg);
        let n = frame.len();
        frame[n - 4..].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(decode(&frame), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn peer_count_cannot_balloon_allocation() {
        // A Neighbors frame claiming 65535 successors in a tiny payload
        // must fail on the count check, not allocate 65535 entries.
        let msg = WireMsg::Ring(RingMsg::Neighbors {
            me: peer(0.5, 1),
            predecessor: None,
            successors: vec![],
        });
        let mut frame = encode(&msg);
        let n = frame.len();
        frame[n - 2..].copy_from_slice(&u16::MAX.to_be_bytes());
        assert!(matches!(decode(&frame), Err(WireError::Truncated { .. })));
    }
}
