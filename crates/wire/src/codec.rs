//! The versioned, length-prefixed binary codec for inter-node traffic.
//!
//! Every frame on the wire is:
//!
//! ```text
//! +------+------+---------+-----+----------------+------------------+
//! | 0x44 | 0x32 | version | tag | payload length | payload ...      |
//! | 'D'  | '2'  |  (1 B)  |(1 B)|  (4 B, BE u32) | (length bytes)   |
//! +------+------+---------+-----+----------------+------------------+
//! ```
//!
//! The two magic bytes reject cross-protocol traffic, the version byte
//! rejects incompatible peers, and the one-byte tag names the message
//! variant so a decoder never has to guess. Payload integers are
//! big-endian; [`Key`]s are their raw 64 bytes; variable-length fields
//! carry explicit counts. Decoding is strict: truncated frames, oversized
//! length prefixes, unknown tags, and trailing bytes are all
//! [`WireError`]s, never panics — a malformed peer costs a closed
//! connection, not a crashed node.

use d2_ring::messages::{Addr, PeerInfo, RingMsg};
use d2_types::{D2Error, Key, KeyRange, KEY_BYTES};
use std::fmt;

/// First two bytes of every frame: `b"D2"`.
pub const MAGIC: [u8; 2] = [0x44, 0x32];

/// Current protocol version. Bump on any incompatible payload change.
pub const VERSION: u8 = 1;

/// Bytes before the payload: magic (2) + version (1) + tag (1) + length (4).
pub const HEADER_LEN: usize = 8;

/// Hard cap on a single frame's payload. A length prefix above this is
/// rejected before any allocation, so a hostile 4 GiB length cannot
/// balloon memory.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Decode failures. Every variant is a clean error a transport can log
/// and recover from (by dropping the connection); none abort the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The version byte did not match [`VERSION`].
    BadVersion(u8),
    /// The tag byte named no known message variant.
    UnknownTag(u8),
    /// The frame ended before the announced payload did.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// The length prefix exceeded [`MAX_PAYLOAD`].
    Oversized {
        /// The announced payload length.
        len: u64,
    },
    /// The payload decoded cleanly but bytes were left over.
    Trailing {
        /// Undecoded bytes at the end of the payload.
        extra: usize,
    },
    /// A field held a structurally invalid value.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v} (want {VERSION})"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag 0x{t:02x}"),
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} more bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(f, "payload length {len} exceeds cap {MAX_PAYLOAD}")
            }
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after payload"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for D2Error {
    fn from(e: WireError) -> Self {
        D2Error::Codec(e.to_string())
    }
}

/// A client request carried inside [`WireMsg::Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Locate the owner of `key` via a recursive ring lookup.
    Lookup {
        /// The key to locate.
        key: Key,
    },
    /// Store a block here and replicate along the successor chain.
    ///
    /// Each node stores its copy, then forwards the request with `fanout`
    /// decremented and `stored` incremented; the **last** node in the
    /// chain (or the first that cannot forward) sends the
    /// [`Response::PutAck`] — so an acked put means every reachable
    /// replica is written, with no fan-out race left for callers to
    /// sleep around.
    Put {
        /// The block's key.
        key: Key,
        /// Further successors that should also store the block.
        fanout: u32,
        /// Copies already written upstream in this chain.
        stored: u32,
        /// The block payload.
        data: Vec<u8>,
    },
    /// Fetch the block stored here under `key`.
    Get {
        /// The block's key.
        key: Key,
    },
    /// Report ring state (predecessor, successors, block count).
    Status,
    /// Stop this node's event loop (graceful shutdown).
    Shutdown,
}

impl Request {
    /// Short stable name of this request kind, used as the metric label
    /// for per-message-type RTT histograms (`net.rtt_us.<name>`).
    pub fn type_name(&self) -> &'static str {
        match self {
            Request::Lookup { .. } => "lookup",
            Request::Put { .. } => "put",
            Request::Get { .. } => "get",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One node's view of the ring, as carried by [`Response::Status`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireStatus {
    /// The responding node's identity.
    pub me: PeerInfo,
    /// Its predecessor, if known.
    pub predecessor: Option<PeerInfo>,
    /// Its successor list.
    pub successors: Vec<PeerInfo>,
    /// Blocks stored locally.
    pub blocks: u64,
}

/// A reply to a [`Request`], correlated by `req_id`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Lookup`].
    Owner {
        /// The owner of the looked-up key.
        owner: PeerInfo,
        /// Forwarding hops the lookup took.
        hops: u32,
    },
    /// Reply to [`Request::Put`], sent by the end of the replica chain.
    PutAck {
        /// Copies written along the chain (double-counts only when the
        /// chain wraps a ring smaller than the replication factor).
        replicas: u32,
    },
    /// Reply to [`Request::Get`].
    Block {
        /// The block, or `None` when this node does not hold it.
        data: Option<Vec<u8>>,
    },
    /// Reply to [`Request::Status`].
    Status(WireStatus),
    /// Reply to [`Request::Shutdown`], sent just before the node exits.
    ShutdownAck,
}

/// Everything that travels between processes: ring protocol traffic plus
/// the client request/response envelope.
///
/// Requests carry the sender's transport address so the far end of a
/// replica chain can reply directly to the original client.
#[derive(Clone, Debug, PartialEq)]
pub enum WireMsg {
    /// Ring maintenance / lookup traffic between nodes.
    Ring(RingMsg),
    /// A client-originated request.
    Request {
        /// Correlates the eventual [`WireMsg::Response`].
        req_id: u64,
        /// Transport address the response should be sent to.
        from: Addr,
        /// The request body.
        body: Request,
    },
    /// The reply to a [`WireMsg::Request`].
    Response {
        /// Echo of the request's `req_id`.
        req_id: u64,
        /// The response body.
        body: Response,
    },
}

impl WireMsg {
    /// The frame tag byte identifying this message variant.
    pub fn tag(&self) -> u8 {
        match self {
            WireMsg::Ring(m) => match m {
                RingMsg::FindOwner { .. } => TAG_FIND_OWNER,
                RingMsg::OwnerIs { .. } => TAG_OWNER_IS,
                RingMsg::Join { .. } => TAG_JOIN,
                RingMsg::JoinAck { .. } => TAG_JOIN_ACK,
                RingMsg::GetNeighbors { .. } => TAG_GET_NEIGHBORS,
                RingMsg::Neighbors { .. } => TAG_NEIGHBORS,
                RingMsg::Notify { .. } => TAG_NOTIFY,
            },
            WireMsg::Request { body, .. } => match body {
                Request::Lookup { .. } => TAG_REQ_LOOKUP,
                Request::Put { .. } => TAG_REQ_PUT,
                Request::Get { .. } => TAG_REQ_GET,
                Request::Status => TAG_REQ_STATUS,
                Request::Shutdown => TAG_REQ_SHUTDOWN,
            },
            WireMsg::Response { body, .. } => match body {
                Response::Owner { .. } => TAG_RESP_OWNER,
                Response::PutAck { .. } => TAG_RESP_PUT_ACK,
                Response::Block { .. } => TAG_RESP_BLOCK,
                Response::Status(_) => TAG_RESP_STATUS,
                Response::ShutdownAck => TAG_RESP_SHUTDOWN_ACK,
            },
        }
    }

    /// Short stable name of this message variant, used as a metric label.
    pub fn type_name(&self) -> &'static str {
        match self {
            WireMsg::Ring(m) => match m {
                RingMsg::FindOwner { .. } => "find_owner",
                RingMsg::OwnerIs { .. } => "owner_is",
                RingMsg::Join { .. } => "join",
                RingMsg::JoinAck { .. } => "join_ack",
                RingMsg::GetNeighbors { .. } => "get_neighbors",
                RingMsg::Neighbors { .. } => "neighbors",
                RingMsg::Notify { .. } => "notify",
            },
            WireMsg::Request { body, .. } => body.type_name(),
            WireMsg::Response { body, .. } => match body {
                Response::Owner { .. } => "owner",
                Response::PutAck { .. } => "put_ack",
                Response::Block { .. } => "block",
                Response::Status(_) => "status",
                Response::ShutdownAck => "shutdown_ack",
            },
        }
    }
}

const TAG_FIND_OWNER: u8 = 0x01;
const TAG_OWNER_IS: u8 = 0x02;
const TAG_JOIN: u8 = 0x03;
const TAG_JOIN_ACK: u8 = 0x04;
const TAG_GET_NEIGHBORS: u8 = 0x05;
const TAG_NEIGHBORS: u8 = 0x06;
const TAG_NOTIFY: u8 = 0x07;
const TAG_REQ_LOOKUP: u8 = 0x10;
const TAG_REQ_PUT: u8 = 0x11;
const TAG_REQ_GET: u8 = 0x12;
const TAG_REQ_STATUS: u8 = 0x13;
const TAG_REQ_SHUTDOWN: u8 = 0x14;
const TAG_RESP_OWNER: u8 = 0x20;
const TAG_RESP_PUT_ACK: u8 = 0x21;
const TAG_RESP_BLOCK: u8 = 0x22;
const TAG_RESP_STATUS: u8 = 0x23;
const TAG_RESP_SHUTDOWN_ACK: u8 = 0x24;

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    fn key(&mut self, k: &Key) {
        self.0.extend_from_slice(k.as_bytes());
    }
    fn addr(&mut self, a: Addr) {
        self.u64(a as u64);
    }
    fn peer(&mut self, p: &PeerInfo) {
        self.key(&p.id);
        self.addr(p.addr);
    }
    fn opt_peer(&mut self, p: &Option<PeerInfo>) {
        match p {
            Some(p) => {
                self.u8(1);
                self.peer(p);
            }
            None => self.u8(0),
        }
    }
    fn peers(&mut self, ps: &[PeerInfo]) {
        debug_assert!(ps.len() <= u16::MAX as usize);
        self.u16(ps.len() as u16);
        for p in ps {
            self.peer(p);
        }
    }
    fn range(&mut self, r: &KeyRange) {
        self.key(r.start());
        self.key(r.end());
    }
    fn bytes(&mut self, b: &[u8]) {
        debug_assert!(b.len() <= MAX_PAYLOAD);
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
    fn opt_bytes(&mut self, b: &Option<Vec<u8>>) {
        match b {
            Some(b) => {
                self.u8(1);
                self.bytes(b);
            }
            None => self.u8(0),
        }
    }
}

/// Encodes `msg` as one complete frame (header + payload).
pub fn encode(msg: &WireMsg) -> Vec<u8> {
    let mut e = Enc(Vec::with_capacity(HEADER_LEN + 64));
    e.0.extend_from_slice(&MAGIC);
    e.u8(VERSION);
    e.u8(msg.tag());
    e.u32(0); // length backpatched below
    match msg {
        WireMsg::Ring(m) => encode_ring(&mut e, m),
        WireMsg::Request { req_id, from, body } => {
            e.u64(*req_id);
            e.addr(*from);
            match body {
                Request::Lookup { key } => e.key(key),
                Request::Put {
                    key,
                    fanout,
                    stored,
                    data,
                } => {
                    e.key(key);
                    e.u32(*fanout);
                    e.u32(*stored);
                    e.bytes(data);
                }
                Request::Get { key } => e.key(key),
                Request::Status | Request::Shutdown => {}
            }
        }
        WireMsg::Response { req_id, body } => {
            e.u64(*req_id);
            match body {
                Response::Owner { owner, hops } => {
                    e.peer(owner);
                    e.u32(*hops);
                }
                Response::PutAck { replicas } => e.u32(*replicas),
                Response::Block { data } => e.opt_bytes(data),
                Response::Status(s) => {
                    e.peer(&s.me);
                    e.opt_peer(&s.predecessor);
                    e.peers(&s.successors);
                    e.u64(s.blocks);
                }
                Response::ShutdownAck => {}
            }
        }
    }
    let len = (e.0.len() - HEADER_LEN) as u32;
    e.0[4..8].copy_from_slice(&len.to_be_bytes());
    e.0
}

fn encode_ring(e: &mut Enc, m: &RingMsg) {
    match m {
        RingMsg::FindOwner {
            target,
            origin,
            req_id,
            hops,
        } => {
            e.key(target);
            e.addr(*origin);
            e.u64(*req_id);
            e.u32(*hops);
        }
        RingMsg::OwnerIs {
            req_id,
            owner,
            range,
            successors,
            hops,
        } => {
            e.u64(*req_id);
            e.peer(owner);
            e.range(range);
            e.peers(successors);
            e.u32(*hops);
        }
        RingMsg::Join { joiner, hops } => {
            e.peer(joiner);
            e.u32(*hops);
        }
        RingMsg::JoinAck {
            successor,
            predecessor,
            successors,
        } => {
            e.peer(successor);
            e.opt_peer(predecessor);
            e.peers(successors);
        }
        RingMsg::GetNeighbors { from } => e.addr(*from),
        RingMsg::Neighbors {
            me,
            predecessor,
            successors,
        } => {
            e.peer(me);
            e.opt_peer(predecessor);
            e.peers(successors);
        }
        RingMsg::Notify { candidate } => e.peer(candidate),
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let got = self.buf.len() - self.pos;
        if got < n {
            return Err(WireError::Truncated { needed: n, got });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn key(&mut self) -> Result<Key, WireError> {
        let raw: [u8; KEY_BYTES] = self.take(KEY_BYTES)?.try_into().unwrap();
        Ok(Key::from_bytes(raw))
    }
    fn addr(&mut self) -> Result<Addr, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::Malformed("addr exceeds usize"))
    }
    fn peer(&mut self) -> Result<PeerInfo, WireError> {
        Ok(PeerInfo {
            id: self.key()?,
            addr: self.addr()?,
        })
    }
    fn opt_peer(&mut self) -> Result<Option<PeerInfo>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.peer()?)),
            _ => Err(WireError::Malformed("option flag must be 0 or 1")),
        }
    }
    fn peers(&mut self) -> Result<Vec<PeerInfo>, WireError> {
        let n = self.u16()? as usize;
        // Each peer is 72 bytes; reject counts the remaining buffer
        // cannot possibly hold before allocating.
        if n * (KEY_BYTES + 8) > self.buf.len() - self.pos {
            return Err(WireError::Truncated {
                needed: n * (KEY_BYTES + 8),
                got: self.buf.len() - self.pos,
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.peer()?);
        }
        Ok(out)
    }
    fn range(&mut self) -> Result<KeyRange, WireError> {
        Ok(KeyRange::new(self.key()?, self.key()?))
    }
    fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }
    fn opt_bytes(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.bytes()?)),
            _ => Err(WireError::Malformed("option flag must be 0 or 1")),
        }
    }
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::Trailing {
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Validates an 8-byte frame header, returning `(tag, payload length)`.
///
/// Transports read exactly [`HEADER_LEN`] bytes, call this, then read the
/// returned number of payload bytes and hand them to [`decode_payload`].
pub fn decode_header(hdr: &[u8; HEADER_LEN]) -> Result<(u8, usize), WireError> {
    if hdr[..2] != MAGIC {
        return Err(WireError::BadMagic([hdr[0], hdr[1]]));
    }
    if hdr[2] != VERSION {
        return Err(WireError::BadVersion(hdr[2]));
    }
    let len = u32::from_be_bytes(hdr[4..8].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len: len as u64 });
    }
    Ok((hdr[3], len))
}

/// Decodes the payload of a frame whose header carried `tag`. The payload
/// must be consumed exactly; trailing bytes are an error.
pub fn decode_payload(tag: u8, payload: &[u8]) -> Result<WireMsg, WireError> {
    let mut d = Dec {
        buf: payload,
        pos: 0,
    };
    let msg = match tag {
        TAG_FIND_OWNER => WireMsg::Ring(RingMsg::FindOwner {
            target: d.key()?,
            origin: d.addr()?,
            req_id: d.u64()?,
            hops: d.u32()?,
        }),
        TAG_OWNER_IS => WireMsg::Ring(RingMsg::OwnerIs {
            req_id: d.u64()?,
            owner: d.peer()?,
            range: d.range()?,
            successors: d.peers()?,
            hops: d.u32()?,
        }),
        TAG_JOIN => WireMsg::Ring(RingMsg::Join {
            joiner: d.peer()?,
            hops: d.u32()?,
        }),
        TAG_JOIN_ACK => WireMsg::Ring(RingMsg::JoinAck {
            successor: d.peer()?,
            predecessor: d.opt_peer()?,
            successors: d.peers()?,
        }),
        TAG_GET_NEIGHBORS => WireMsg::Ring(RingMsg::GetNeighbors { from: d.addr()? }),
        TAG_NEIGHBORS => WireMsg::Ring(RingMsg::Neighbors {
            me: d.peer()?,
            predecessor: d.opt_peer()?,
            successors: d.peers()?,
        }),
        TAG_NOTIFY => WireMsg::Ring(RingMsg::Notify {
            candidate: d.peer()?,
        }),
        TAG_REQ_LOOKUP | TAG_REQ_PUT | TAG_REQ_GET | TAG_REQ_STATUS | TAG_REQ_SHUTDOWN => {
            let req_id = d.u64()?;
            let from = d.addr()?;
            let body = match tag {
                TAG_REQ_LOOKUP => Request::Lookup { key: d.key()? },
                TAG_REQ_PUT => Request::Put {
                    key: d.key()?,
                    fanout: d.u32()?,
                    stored: d.u32()?,
                    data: d.bytes()?,
                },
                TAG_REQ_GET => Request::Get { key: d.key()? },
                TAG_REQ_STATUS => Request::Status,
                _ => Request::Shutdown,
            };
            WireMsg::Request { req_id, from, body }
        }
        TAG_RESP_OWNER
        | TAG_RESP_PUT_ACK
        | TAG_RESP_BLOCK
        | TAG_RESP_STATUS
        | TAG_RESP_SHUTDOWN_ACK => {
            let req_id = d.u64()?;
            let body = match tag {
                TAG_RESP_OWNER => Response::Owner {
                    owner: d.peer()?,
                    hops: d.u32()?,
                },
                TAG_RESP_PUT_ACK => Response::PutAck { replicas: d.u32()? },
                TAG_RESP_BLOCK => Response::Block {
                    data: d.opt_bytes()?,
                },
                TAG_RESP_STATUS => Response::Status(WireStatus {
                    me: d.peer()?,
                    predecessor: d.opt_peer()?,
                    successors: d.peers()?,
                    blocks: d.u64()?,
                }),
                _ => Response::ShutdownAck,
            };
            WireMsg::Response { req_id, body }
        }
        other => return Err(WireError::UnknownTag(other)),
    };
    d.finish()?;
    Ok(msg)
}

/// Decodes one complete frame (header + payload) produced by [`encode`].
///
/// The frame must contain exactly one message; leftover bytes after the
/// announced payload are a [`WireError::Trailing`] error.
pub fn decode(frame: &[u8]) -> Result<WireMsg, WireError> {
    if frame.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            got: frame.len(),
        });
    }
    let hdr: [u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();
    let (tag, len) = decode_header(&hdr)?;
    let rest = &frame[HEADER_LEN..];
    if rest.len() < len {
        return Err(WireError::Truncated {
            needed: len,
            got: rest.len(),
        });
    }
    if rest.len() > len {
        return Err(WireError::Trailing {
            extra: rest.len() - len,
        });
    }
    decode_payload(tag, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(f: f64, addr: Addr) -> PeerInfo {
        PeerInfo {
            id: Key::from_fraction(f),
            addr,
        }
    }

    #[test]
    fn ring_msgs_round_trip() {
        let msgs = [
            WireMsg::Ring(RingMsg::FindOwner {
                target: Key::from_fraction(0.3),
                origin: 7,
                req_id: 42,
                hops: 3,
            }),
            WireMsg::Ring(RingMsg::OwnerIs {
                req_id: 42,
                owner: peer(0.4, 9),
                range: KeyRange::new(Key::from_fraction(0.3), Key::from_fraction(0.4)),
                successors: vec![peer(0.5, 10), peer(0.6, 11)],
                hops: 4,
            }),
            WireMsg::Ring(RingMsg::Join {
                joiner: peer(0.1, 3),
                hops: 0,
            }),
            WireMsg::Ring(RingMsg::JoinAck {
                successor: peer(0.2, 4),
                predecessor: None,
                successors: vec![],
            }),
            WireMsg::Ring(RingMsg::GetNeighbors { from: 12 }),
            WireMsg::Ring(RingMsg::Neighbors {
                me: peer(0.7, 5),
                predecessor: Some(peer(0.65, 4)),
                successors: vec![peer(0.8, 6)],
            }),
            WireMsg::Ring(RingMsg::Notify {
                candidate: peer(0.9, 8),
            }),
        ];
        for msg in msgs {
            let frame = encode(&msg);
            assert_eq!(decode(&frame).unwrap(), msg, "round trip failed");
        }
    }

    #[test]
    fn request_response_round_trip() {
        let msgs = [
            WireMsg::Request {
                req_id: 1,
                from: 99,
                body: Request::Put {
                    key: Key::from_u64(5),
                    fanout: 2,
                    stored: 1,
                    data: b"block".to_vec(),
                },
            },
            WireMsg::Response {
                req_id: 1,
                body: Response::Block {
                    data: Some(vec![0xab; 1000]),
                },
            },
            WireMsg::Response {
                req_id: 2,
                body: Response::Status(WireStatus {
                    me: peer(0.5, 1),
                    predecessor: Some(peer(0.4, 0)),
                    successors: vec![peer(0.6, 2)],
                    blocks: 17,
                }),
            },
        ];
        for msg in msgs {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg);
        }
    }

    #[test]
    fn header_rejects_garbage() {
        let good = encode(&WireMsg::Request {
            req_id: 0,
            from: 0,
            body: Request::Status,
        });
        let mut bad_magic = good.clone();
        bad_magic[0] = 0xff;
        assert!(matches!(
            decode(&bad_magic),
            Err(WireError::BadMagic([0xff, _]))
        ));
        let mut bad_version = good.clone();
        bad_version[2] = 9;
        assert_eq!(decode(&bad_version), Err(WireError::BadVersion(9)));
        let mut bad_tag = good.clone();
        bad_tag[3] = 0x7f;
        assert_eq!(decode(&bad_tag), Err(WireError::UnknownTag(0x7f)));
    }

    #[test]
    fn truncation_and_trailing_are_errors() {
        let frame = encode(&WireMsg::Ring(RingMsg::GetNeighbors { from: 3 }));
        for cut in 0..frame.len() {
            assert!(
                matches!(decode(&frame[..cut]), Err(WireError::Truncated { .. })),
                "cut at {cut} must be truncated"
            );
        }
        let mut padded = frame.clone();
        padded.push(0);
        assert_eq!(decode(&padded), Err(WireError::Trailing { extra: 1 }));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut frame = encode(&WireMsg::Request {
            req_id: 0,
            from: 0,
            body: Request::Status,
        });
        frame[4..8].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(decode(&frame), Err(WireError::Oversized { .. })));
    }

    #[test]
    fn peer_count_cannot_balloon_allocation() {
        // A Neighbors frame claiming 65535 successors in a tiny payload
        // must fail on the count check, not allocate 65535 entries.
        let msg = WireMsg::Ring(RingMsg::Neighbors {
            me: peer(0.5, 1),
            predecessor: None,
            successors: vec![],
        });
        let mut frame = encode(&msg);
        let n = frame.len();
        frame[n - 2..].copy_from_slice(&u16::MAX.to_be_bytes());
        assert!(matches!(decode(&frame), Err(WireError::Truncated { .. })));
    }
}
