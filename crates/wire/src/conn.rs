//! Per-connection read/write state machines for the reactor.
//!
//! The poller thread ([`crate::reactor`]) owns every socket of a
//! transport and drives each one through a small state machine instead
//! of parking a thread on it:
//!
//! - [`InboundConn`] accumulates bytes across readiness events and
//!   decodes complete frames. A frame may arrive split across
//!   arbitrarily many reads (TCP guarantees nothing about boundaries);
//!   the tail that does not end on a frame boundary is carried in a
//!   per-connection buffer until the next readable event.
//! - [`OutboundConn`] owns the *carry buffer* for writes the socket
//!   would not accept in one go: when the kernel send buffer fills
//!   (`WouldBlock` mid-batch), the unwritten suffix stays in the carry
//!   and is retried on later poll iterations, so a stalled peer never
//!   blocks the poller thread — it merely stops consuming its own
//!   pending queue until the carry drains.
//!
//! Both halves also keep a [`ScanClock`]: without epoll, the poller
//! discovers readiness by polling each socket with a nonblocking
//! syscall, and the clock decays the per-connection scan rate
//! exponentially while a connection is idle (fresh and recently-active
//! connections are scanned every iteration; long-idle ones at the
//! configured cap). This keeps the syscall budget of a process with
//! thousands of idle connections bounded while hot connections stay at
//! minimum latency.

use crate::codec::{self, HEADER_LEN};
use crate::metrics::NetMetrics;
use crate::reactor::Delivery;
use d2_ring::messages::Addr;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;

/// What one pump or flush pass observed on a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Bytes moved: the connection is hot, scan it again immediately.
    Active,
    /// Nothing to do right now (the socket returned `WouldBlock`).
    Idle,
    /// The connection is dead — EOF, a hard IO error, or protocol
    /// garbage (the stream cannot be resynchronized) — and must be
    /// dropped by the caller.
    Closed,
}

/// Exponential-decay scan schedule for one connection.
///
/// `due` gates how often the poller spends a syscall probing this
/// socket: every iteration while the connection is active, backing off
/// ×2 per idle probe up to the configured cap. Any activity snaps the
/// schedule back to hot.
#[derive(Clone, Copy, Debug)]
pub struct ScanClock {
    next_us: u64,
    backoff_us: u64,
}

impl ScanClock {
    /// A hot clock: due immediately.
    pub fn hot() -> ScanClock {
        ScanClock {
            next_us: 0,
            backoff_us: 0,
        }
    }

    /// Whether this connection should be probed at time `now_us`.
    pub fn due(&self, now_us: u64) -> bool {
        now_us >= self.next_us
    }

    /// Records the outcome of a probe at `now_us`: activity resets the
    /// schedule to hot; idleness doubles the backoff from `floor_us` up
    /// to `cap_us`.
    pub fn record(&mut self, state: ConnState, now_us: u64, floor_us: u64, cap_us: u64) {
        match state {
            ConnState::Active => *self = ScanClock::hot(),
            _ => {
                self.backoff_us = (self.backoff_us * 2).clamp(floor_us.max(1), cap_us.max(1));
                self.next_us = now_us + self.backoff_us;
            }
        }
    }
}

/// Encoded-but-unsent frames for one peer, appended by senders under a
/// short lock ([`crate::reactor`] owns one per peer slot). The poller
/// swaps the whole buffer into an [`OutboundConn`] carry and writes it
/// as one batch — the PR 7 combining-lock write path, with the poller
/// as the one designated drainer.
#[derive(Default)]
pub struct PendingFrames {
    /// Concatenated encoded frames awaiting the poller.
    pub buf: Vec<u8>,
    /// How many frames `buf` currently holds.
    pub frames: u64,
}

/// The read state machine for one accepted connection.
pub struct InboundConn {
    stream: TcpStream,
    dst: Addr,
    /// Unconsumed tail of the byte stream: bytes after the last
    /// complete frame boundary, carried across readiness events.
    buf: Vec<u8>,
    /// Scan schedule (public so the poller can gate and update it).
    pub scan: ScanClock,
}

impl InboundConn {
    /// Wraps a freshly accepted nonblocking stream. `dst` is the local
    /// address the remote dialed (packed), used by the poller as the
    /// demux key selecting which endpoint mailbox receives the frames.
    pub fn new(stream: TcpStream, dst: Addr) -> InboundConn {
        InboundConn {
            stream,
            dst,
            buf: Vec::new(),
            scan: ScanClock::hot(),
        }
    }

    /// The packed local address the remote dialed — which virtual
    /// endpoint this connection's frames are for.
    pub fn dst(&self) -> Addr {
        self.dst
    }

    /// Reads everything currently available (into `scratch`, a shared
    /// read buffer), decodes every complete frame, and delivers each to
    /// `tx` (frames for an unregistered endpoint are decoded and
    /// dropped when `tx` is `None`). Returns [`ConnState::Closed`] on
    /// EOF, IO error, or a malformed frame — a byte stream cannot be
    /// resynchronized after garbage, so the connection is the unit of
    /// protocol failure, exactly as in the threaded transport.
    pub fn pump(
        &mut self,
        scratch: &mut [u8],
        tx: Option<&mpsc::Sender<Delivery>>,
        metrics: &NetMetrics,
    ) -> ConnState {
        let mut moved = false;
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return ConnState::Closed,
                Ok(n) => {
                    moved = true;
                    self.buf.extend_from_slice(&scratch[..n]);
                    if self.decode_frames(tx, metrics).is_err() {
                        return ConnState::Closed;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ConnState::Closed,
            }
        }
        if moved {
            ConnState::Active
        } else {
            ConnState::Idle
        }
    }

    /// Decodes every complete frame at the front of `buf`; leaves any
    /// partial frame in place for the next readiness event.
    fn decode_frames(
        &mut self,
        tx: Option<&mpsc::Sender<Delivery>>,
        metrics: &NetMetrics,
    ) -> Result<(), ()> {
        let mut off = 0;
        while self.buf.len() - off >= HEADER_LEN {
            let hdr: [u8; HEADER_LEN] = self.buf[off..off + HEADER_LEN]
                .try_into()
                .expect("slice is HEADER_LEN");
            let (version, tag, len) = match codec::decode_header(&hdr) {
                Ok(v) => v,
                Err(_) => {
                    metrics.decode_error();
                    return Err(());
                }
            };
            if self.buf.len() - off - HEADER_LEN < len {
                break; // payload still in flight
            }
            let payload = &self.buf[off + HEADER_LEN..off + HEADER_LEN + len];
            match codec::decode_payload(version, tag, payload) {
                Ok((msg, trace)) => {
                    metrics.frame_in(HEADER_LEN + len);
                    if let Some(tx) = tx {
                        // A dropped mailbox is the endpoint's problem,
                        // not the connection's.
                        let _ = tx.send((self.dst, msg, trace));
                    }
                }
                Err(_) => {
                    metrics.decode_error();
                    return Err(());
                }
            }
            off += HEADER_LEN + len;
        }
        if off > 0 {
            self.buf.drain(..off);
        }
        Ok(())
    }
}

/// The write state machine for one pooled outbound connection.
pub struct OutboundConn {
    stream: TcpStream,
    /// Carry buffer: a batch swapped out of the peer's pending queue,
    /// written as far as the socket allows. `off` marks how much of it
    /// has already reached the kernel.
    carry: Vec<u8>,
    off: usize,
    frames: u64,
    /// Scan schedule for EOF probing (public so the poller can gate and
    /// update it).
    pub scan: ScanClock,
}

impl OutboundConn {
    /// Wraps a freshly dialed nonblocking stream.
    pub fn new(stream: TcpStream) -> OutboundConn {
        OutboundConn {
            stream,
            carry: Vec::new(),
            off: 0,
            frames: 0,
            scan: ScanClock::hot(),
        }
    }

    /// Whether a previous flush left unwritten bytes in the carry.
    pub fn has_backlog(&self) -> bool {
        self.off < self.carry.len()
    }

    /// How many frames the carry currently holds (written or not) —
    /// the reactor's drain accounting charges them off when the batch
    /// completes or the connection dies.
    pub fn frames_in_carry(&self) -> u64 {
        self.frames
    }

    /// Swaps the peer's pending queue into the (empty) carry buffer.
    /// The buffers are reused forever, so the steady-state write path
    /// allocates nothing.
    pub fn load(&mut self, pending: &mut PendingFrames) {
        debug_assert!(!self.has_backlog(), "load over a backlog loses bytes");
        self.carry.clear();
        self.off = 0;
        std::mem::swap(&mut self.carry, &mut pending.buf);
        self.frames = std::mem::take(&mut pending.frames);
    }

    /// Writes as much of the carry as the socket accepts.
    ///
    /// Returns `Ok(true)` when the whole batch drained (counting it
    /// into `metrics` — `net.msgs_out`/`net.bytes_out` therefore trail
    /// the syscalls slightly), `Ok(false)` when the kernel buffer
    /// filled mid-batch (backlog retained for a later iteration), and
    /// `Err` when the connection died.
    pub fn flush(&mut self, metrics: &NetMetrics) -> io::Result<bool> {
        while self.has_backlog() {
            match self.stream.write(&self.carry[self.off..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.off += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if !self.carry.is_empty() {
            metrics.frames_out(self.frames, self.carry.len());
            if self.frames >= 2 {
                metrics.coalesced_write(self.frames);
            }
            self.carry.clear();
            self.off = 0;
            self.frames = 0;
        }
        Ok(true)
    }

    /// Probes the read side of this outbound connection. Peers never
    /// send data on connections they accepted (replies travel over the
    /// peer's own outbound connection), so the only things to see here
    /// are EOF and RST — early notice that the peer restarted or died,
    /// letting the next send re-dial instead of writing into a corpse.
    pub fn probe_eof(&mut self, scratch: &mut [u8]) -> ConnState {
        loop {
            match self.stream.read(scratch) {
                Ok(0) => return ConnState::Closed,
                Ok(_) => continue, // unexpected chatter; discard
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ConnState::Idle,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ConnState::Closed,
            }
        }
    }
}
