//! # d2-wire: the D2 wire protocol and pluggable transports
//!
//! Everything that crosses a node boundary in a live D2 deployment goes
//! through this crate:
//!
//! - [`codec`] — a versioned, length-prefixed binary framing for all
//!   inter-node traffic: ring maintenance ([`RingMsg`]), client
//!   requests ([`Request`]) and their responses ([`Response`]). Frames
//!   start with a 2-byte magic and a protocol version; decoding is
//!   strict and total — malformed input yields a [`WireError`], never a
//!   panic.
//! - [`transport`] — the [`Transport`] trait (send / timed recv / peer
//!   addressing / fail-fast on dead peers) plus the deterministic
//!   in-process [`ChannelTransport`] used by tests and simulations.
//! - [`tcp`] — [`TcpTransport`]: the same trait over real
//!   `std::net` sockets with per-peer connection pooling and
//!   reconnect-with-backoff (reusing [`d2_ring::RetryPolicy`]).
//! - [`reactor`] / [`conn`] — the event loop under the TCP transport:
//!   one poller thread per process drives every accept, read, and
//!   buffered write through per-connection state machines, and a
//!   [`TcpReactor`] can host many virtual endpoints (distinct loopback
//!   IPs on one socket) — the substrate of `d2-node serve-many`.
//! - [`client`] — [`WireClient`], a request/response port with a
//!   dispatcher thread, used by `Deployment` front-ends and the
//!   `d2-node` command-line client. Blocking `call`s and pipelined
//!   `submit` → [`PendingReply`] handles share one `req_id` space, so a
//!   caller can keep a whole window of requests in flight.
//! - [`metrics`] — [`NetMetrics`]: `net.bytes_{in,out}`, `net.msgs`,
//!   `net.reconnects`, `net.decode_errors` counters and per-message-type
//!   RTT histograms, exported into [`d2_obs::Registry`] snapshots.
//!
//! The point of the seam: `d2-net`'s deployment and node event loop are
//! generic over [`Transport`], so the *same* protocol state machine that
//! runs deterministically over channels in unit tests also runs a real
//! multi-process cluster over TCP.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod codec;
pub mod conn;
pub mod metrics;
pub mod reactor;
pub mod tcp;
pub mod transport;

pub use client::{ClientError, PendingReply, WireClient};
pub use codec::{
    decode, decode_header, decode_payload, decode_traced, encode, encode_into, encode_traced,
    encode_traced_into, Request, Response, WireError, WireHistogram, WireMetrics, WireMsg,
    WireStatus, HEADER_LEN, MAX_PAYLOAD, MIN_VERSION, TRACE_LEN, VERSION,
};
pub use metrics::NetMetrics;
pub use reactor::{Delivery, TcpEndpoint, TcpReactor};
pub use tcp::{pack_addr, unpack_addr, TcpConfig, TcpTransport};
pub use transport::{ChannelHub, ChannelTransport, RecvError, Transport, TransportError};

// Re-exported so transport users need not depend on d2-ring directly.
pub use d2_ring::messages::{Addr, PeerInfo, RingMsg};
