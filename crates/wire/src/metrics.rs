//! Transport-level counters and RTT histograms, exported into
//! [`d2_obs::Registry`] snapshots.

use d2_obs::Registry;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared network metrics: every transport and client port of one
/// deployment records into the same instance, and
/// [`NetMetrics::snapshot_into`] folds the totals into a metric registry
/// under the `net.*` namespace.
///
/// Counters are lock-free atomics (they sit on the per-frame path); the
/// per-message-type RTT histograms live behind a mutex because they are
/// touched once per client round trip, not per frame.
#[derive(Debug, Default)]
pub struct NetMetrics {
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    msgs_in: AtomicU64,
    msgs_out: AtomicU64,
    reconnects: AtomicU64,
    decode_errors: AtomicU64,
    orphan_responses: AtomicU64,
    loopback_msgs: AtomicU64,
    coalesced_frames: AtomicU64,
    rtt: Mutex<Registry>,
}

impl NetMetrics {
    /// Creates a zeroed metrics sheet.
    pub fn new() -> Self {
        NetMetrics::default()
    }

    /// Records one received frame of `bytes` total size.
    pub fn frame_in(&self, bytes: usize) {
        self.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sent frame of `bytes` total size.
    pub fn frame_out(&self, bytes: usize) {
        self.frames_out(1, bytes);
    }

    /// Records `frames` sent frames totalling `bytes` — one coalesced
    /// write that carried a whole batch.
    pub fn frames_out(&self, frames: u64, bytes: usize) {
        self.bytes_out.fetch_add(bytes as u64, Ordering::Relaxed);
        self.msgs_out.fetch_add(frames, Ordering::Relaxed);
    }

    /// Records a successful reconnect to a peer that had failed.
    pub fn reconnect(&self) {
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a frame that failed to decode (and cost its connection).
    pub fn decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response whose `req_id` matched no pending request — a
    /// reply that arrived after its caller timed out (or a confused
    /// peer). A storm of these is how `d2-node top` spots a cluster
    /// answering slower than its clients are willing to wait.
    pub fn orphan_response(&self) {
        self.orphan_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a message delivered over the loopback short-circuit (no
    /// socket, no encoded frame). Counted separately from
    /// `net.msgs_{in,out}` so mean-frame-size math over
    /// `net.bytes_* / net.msgs_*` only ever divides real wire traffic.
    pub fn loopback_msg(&self) {
        self.loopback_msgs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batched write: `frames` frames left in one syscall.
    /// Only drains of two or more frames count — the steady state of an
    /// uncontended peer is one frame per write and would drown the
    /// signal.
    pub fn coalesced_write(&self, frames: u64) {
        self.coalesced_frames.fetch_add(frames, Ordering::Relaxed);
    }

    /// Records one request round trip of `us` microseconds for the
    /// message type `name` (histogram `net.rtt_us.<name>`).
    pub fn record_rtt(&self, name: &str, us: u64) {
        self.rtt.lock().observe(&format!("net.rtt_us.{name}"), us);
    }

    /// Folds the current totals into `reg`: `net.bytes_{in,out}`,
    /// `net.msgs` (plus the in/out split), `net.reconnects`,
    /// `net.decode_errors`, and one `net.rtt_us.<type>` histogram per
    /// message type observed.
    pub fn snapshot_into(&self, reg: &mut Registry) {
        let (bi, bo) = (
            self.bytes_in.load(Ordering::Relaxed),
            self.bytes_out.load(Ordering::Relaxed),
        );
        let (mi, mo) = (
            self.msgs_in.load(Ordering::Relaxed),
            self.msgs_out.load(Ordering::Relaxed),
        );
        reg.add("net.bytes_in", bi);
        reg.add("net.bytes_out", bo);
        reg.add("net.msgs", mi + mo);
        reg.add("net.msgs_in", mi);
        reg.add("net.msgs_out", mo);
        reg.add("net.reconnects", self.reconnects.load(Ordering::Relaxed));
        reg.add(
            "net.decode_errors",
            self.decode_errors.load(Ordering::Relaxed),
        );
        reg.add(
            "net.orphan_responses",
            self.orphan_responses.load(Ordering::Relaxed),
        );
        reg.add(
            "net.loopback_msgs",
            self.loopback_msgs.load(Ordering::Relaxed),
        );
        reg.add(
            "net.coalesced_frames",
            self.coalesced_frames.load(Ordering::Relaxed),
        );
        reg.merge(&self.rtt.lock());
    }

    /// The current totals as a fresh registry.
    pub fn snapshot(&self) -> Registry {
        let mut reg = Registry::new();
        self.snapshot_into(&mut reg);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_all_counters() {
        let m = NetMetrics::new();
        m.frame_in(100);
        m.frame_in(28);
        m.frame_out(64);
        m.reconnect();
        m.record_rtt("lookup", 1500);
        m.record_rtt("lookup", 2500);
        m.orphan_response();
        m.loopback_msg();
        m.loopback_msg();
        m.coalesced_write(3);
        let reg = m.snapshot();
        assert_eq!(reg.counter("net.bytes_in"), 128);
        assert_eq!(reg.counter("net.bytes_out"), 64);
        assert_eq!(reg.counter("net.msgs"), 3);
        assert_eq!(reg.counter("net.reconnects"), 1);
        assert_eq!(reg.counter("net.orphan_responses"), 1);
        assert_eq!(reg.counter("net.loopback_msgs"), 2);
        assert_eq!(reg.counter("net.coalesced_frames"), 3);
        assert_eq!(reg.histogram("net.rtt_us.lookup").unwrap().count(), 2);
    }
}
