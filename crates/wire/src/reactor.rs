//! The event-loop core of the TCP transport: one poller thread per
//! [`TcpReactor`] drives every accept, read, and buffered write the
//! process owns, replacing the acceptor-plus-reader-per-connection
//! thread model. Total thread count is O(1) per process instead of
//! O(connections) — the property that lets one machine host a
//! 1,000-node cluster (`d2-node serve-many`).
//!
//! ## Structure
//!
//! A reactor is a listener plus any number of registered *endpoints* —
//! virtual transport addresses sharing the one socket. `TcpTransport`
//! (the common case) is a reactor with exactly one endpoint; `d2-node
//! serve-many` opens one endpoint per hosted node, each a distinct
//! loopback IP on the shared port ([`crate::tcp::pack_addr`] keeps
//! addresses bijective, so ring messages need no directory). Inbound
//! demux is free: the accepted socket's *local* address is whatever IP
//! the remote dialed, which names the endpoint.
//!
//! ## Send path
//!
//! Senders never touch a socket. A send encodes the frame into the
//! peer's pending queue (the PR 7 combining-lock buffer), marks the
//! peer dirty, and unparks the poller, which swaps whole batches into
//! the connection's carry buffer and writes them with single syscalls.
//! Two exceptions stay on the sender's thread, on purpose:
//!
//! - **Dialing.** The first send to a disconnected peer performs the
//!   blocking `connect_timeout` inline and only hands the established
//!   (nonblocking) stream to the poller. This preserves fail-fast
//!   semantics: a send to a dead peer returns `PeerUnreachable` in one
//!   connect timeout, synchronously — the eviction/reroute logic in
//!   the layers above depends on that, and a poller-side dial would
//!   convert it into a silent timeout.
//! - **Loopback.** A destination registered on the *same* reactor is
//!   delivered straight to its mailbox, no socket and no frame — the
//!   fast path that makes co-hosted nodes in `serve-many` cheap.
//!
//! Batched sends keep the PR 7 loss contract: once a frame is queued
//! (`Ok`), a later connection death takes the whole batch with it,
//! exactly as TCP itself may lose kernel-buffered bytes; every protocol
//! layer above already tolerates message loss. A peer that stops
//! draining its socket is bounded by `max_pending_bytes`: further sends
//! fail fast with `PeerUnreachable` instead of buffering without limit.
//!
//! ## Readiness without epoll
//!
//! The poller discovers readiness by nonblocking probes, not epoll —
//! the crate is dependency-free `std` by design. Each connection's
//! [`ScanClock`](crate::conn::ScanClock) decays its probe rate
//! exponentially while idle (hot
//! connections are probed every iteration), keeping the syscall budget
//! bounded with thousands of mostly-idle connections. The loop parks
//! for `poll_interval` when an iteration moves no bytes and is unparked
//! early by any sender, so the write path never waits for a tick.

use crate::codec::WireMsg;
use crate::conn::{ConnState, InboundConn, OutboundConn, PendingFrames};
use crate::metrics::NetMetrics;
use crate::tcp::{pack_addr, TcpConfig};
use crate::transport::{RecvError, Transport, TransportError};
use d2_obs::TraceCtx;
use d2_ring::messages::Addr;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One delivered message: the (packed) local address it arrived for —
/// which virtual endpoint — plus the message and its trace context.
/// Endpoints opened with a private mailbox receive exactly their own
/// address; a shared queue (`open_with_queue`) sees every co-hosted
/// node's traffic and routes by this field.
pub type Delivery = (Addr, WireMsg, TraceCtx);

/// One peer's outbound state: the pending queue senders append encoded
/// frames to, the link state guarding dial attempts, and lock-free
/// mirrors letting the hot paths skip both mutexes.
#[derive(Default)]
struct PeerSlot {
    pending: Mutex<PendingFrames>,
    link: Mutex<PeerLink>,
    /// Breaker deadline in µs since the reactor epoch; 0 = closed.
    /// Authoritative copy is `PeerLink::retry_at`.
    retry_at_us: AtomicU64,
    /// True while this peer sits in the poller's dirty list, so a burst
    /// of sends enqueues it once, not once per frame.
    queued: AtomicBool,
}

/// Dial/breaker state for one peer. `connected` means an established
/// stream for this peer is either staged for adoption or owned by the
/// poller; it says nothing about the peer still being alive.
#[derive(Default)]
struct PeerLink {
    connected: bool,
    /// Whether this peer was ever successfully dialed — a later
    /// successful dial is then a *re*connect (`net.reconnects`), even
    /// when the old connection ended with a clean EOF rather than a
    /// dial failure.
    ever_connected: bool,
    failures: u32,
    retry_at: Option<Instant>,
}

struct Shared {
    port: u16,
    cfg: TcpConfig,
    /// Zero point for every µs timestamp in the reactor.
    epoch: Instant,
    shutdown: AtomicBool,
    metrics: Arc<NetMetrics>,
    /// The poller's thread handle, for sender-side unpark.
    poller: Mutex<Option<std::thread::Thread>>,
    poller_join: Mutex<Option<JoinHandle<()>>>,
    /// Registered endpoints: packed virtual address → mailbox.
    endpoints: RwLock<HashMap<Addr, mpsc::Sender<Delivery>>>,
    /// Per-peer outbound slots. The map lock is held only for lookup,
    /// never across a connect or write.
    pool: Mutex<HashMap<Addr, Arc<PeerSlot>>>,
    /// Peers with freshly queued frames, awaiting a poller pass.
    dirty: Mutex<Vec<Addr>>,
    /// Streams dialed by senders, awaiting poller adoption.
    adopted: Mutex<Vec<(Addr, TcpStream)>>,
    /// Frames accepted by `send_from` but not yet written to a socket
    /// (or dropped with a dead connection). Lets [`TcpReactor::shutdown`]
    /// drain in-flight replies — e.g. the ShutdownAck a node queues
    /// right before closing its transport — instead of killing them.
    unsent: AtomicU64,
}

impl Shared {
    fn us_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    fn wake_poller(&self) {
        if let Some(t) = &*self.poller.lock() {
            t.unpark();
        }
    }

    /// Drops a peer's queued frames (connection failed or died),
    /// keeping the `unsent` drain counter balanced.
    fn clear_pending(&self, slot: &PeerSlot) {
        let mut q = slot.pending.lock();
        self.unsent.fetch_sub(q.frames, Ordering::AcqRel);
        q.buf.clear();
        q.frames = 0;
    }

    /// Arms the reconnect backoff window (and its lock-free mirror)
    /// after `link.failures` consecutive failures.
    fn open_breaker(&self, slot: &PeerSlot, link: &mut PeerLink, now: Instant) {
        let backoff = self.cfg.retry.backoff_us(link.failures);
        let at = now + Duration::from_micros(backoff);
        link.retry_at = Some(at);
        // `max(1)`: 0 is the breaker-closed sentinel.
        slot.retry_at_us
            .store(self.us_since_epoch(at).max(1), Ordering::Release);
    }

    /// The whole send path. Runs on the sender's thread; only queue
    /// operations and (for a disconnected peer) one dial ever block.
    fn send_from(&self, to: Addr, msg: &WireMsg, trace: TraceCtx) -> Result<(), TransportError> {
        if self.shutdown.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        // Loopback fast path: a destination on this reactor gets the
        // message straight into its mailbox — no socket, no frame.
        if let Some(tx) = self.endpoints.read().get(&to).cloned() {
            tx.send((to, msg.clone(), trace))
                .map_err(|_| TransportError::PeerUnreachable(to))?;
            self.metrics.loopback_msg();
            return Ok(());
        }
        let slot = Arc::clone(self.pool.lock().entry(to).or_default());
        // Breaker fast path: while the backoff window is open, fail
        // without queueing a frame or contending on the peer locks.
        let retry_at = slot.retry_at_us.load(Ordering::Acquire);
        if retry_at != 0 && self.us_since_epoch(Instant::now()) < retry_at {
            return Err(TransportError::PeerUnreachable(to));
        }
        {
            let mut q = slot.pending.lock();
            if q.buf.len() >= self.cfg.max_pending_bytes {
                // The peer has stopped draining its socket; bound the
                // queue instead of buffering without limit. Callers
                // treat this like any other unreachable peer.
                return Err(TransportError::PeerUnreachable(to));
            }
            q.frames += 1;
            crate::codec::encode_traced_into(&mut q.buf, msg, trace);
            self.unsent.fetch_add(1, Ordering::AcqRel);
        }
        let mut link = slot.link.lock();
        if !link.connected {
            let now = Instant::now();
            if let Some(at) = link.retry_at {
                if now < at {
                    // Lost the race with a concurrent breaker-opener;
                    // the frame dies with the failed connection.
                    self.clear_pending(&slot);
                    return Err(TransportError::PeerUnreachable(to));
                }
            }
            let sock = SocketAddr::V4(crate::tcp::unpack_addr(to));
            match TcpStream::connect_timeout(&sock, self.cfg.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_nonblocking(true);
                    if link.failures > 0 || link.ever_connected {
                        self.metrics.reconnect();
                    }
                    link.connected = true;
                    link.ever_connected = true;
                    link.failures = 0;
                    link.retry_at = None;
                    slot.retry_at_us.store(0, Ordering::Release);
                    self.adopted.lock().push((to, stream));
                }
                Err(_) => {
                    link.failures += 1;
                    self.open_breaker(&slot, &mut link, now);
                    self.clear_pending(&slot);
                    return Err(TransportError::PeerUnreachable(to));
                }
            }
        }
        drop(link);
        if !slot.queued.swap(true, Ordering::AcqRel) {
            self.dirty.lock().push(to);
        }
        self.wake_poller();
        Ok(())
    }
}

/// The event-loop TCP transport core: a listener, a poller thread, and
/// a registry of virtual endpoints sharing the socket. Use
/// [`crate::tcp::TcpTransport`] for the ordinary one-endpoint case;
/// use the reactor directly to multiplex many nodes over one socket.
pub struct TcpReactor {
    shared: Arc<Shared>,
}

impl TcpReactor {
    /// Binds a listener on `listen_ip:port` (port 0 picks a free port)
    /// and starts the poller thread. Binding `0.0.0.0` accepts dials to
    /// *any* local IP on the port — required for virtual endpoints on
    /// distinct loopback addresses (the whole `127/8` block routes
    /// locally on Linux).
    pub fn bind(
        listen_ip: Ipv4Addr,
        port: u16,
        cfg: TcpConfig,
        metrics: Arc<NetMetrics>,
    ) -> io::Result<TcpReactor> {
        // Even with port 0 (kernel-assigned, collision-free by design)
        // the bind can transiently fail with AddrInUse when the
        // ephemeral range is briefly exhausted by TIME_WAIT sockets —
        // multi-process test clusters churn through hundreds of
        // connections. Retry the rare race instead of failing the node.
        let mut attempt: u64 = 0;
        let listener = loop {
            match TcpListener::bind(SocketAddrV4::new(listen_ip, port)) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && attempt < 16 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(5 * attempt));
                }
                Err(e) => return Err(e),
            }
        };
        listener.set_nonblocking(true)?;
        let bound = match listener.local_addr()? {
            SocketAddr::V4(v4) => v4,
            SocketAddr::V6(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "TcpReactor is IPv4-only (addr packing)",
                ))
            }
        };
        let shared = Arc::new(Shared {
            port: bound.port(),
            cfg,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            metrics,
            poller: Mutex::new(None),
            poller_join: Mutex::new(None),
            endpoints: RwLock::new(HashMap::new()),
            pool: Mutex::new(HashMap::new()),
            dirty: Mutex::new(Vec::new()),
            adopted: Mutex::new(Vec::new()),
            unsent: AtomicU64::new(0),
        });
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("d2-poller".into())
                .spawn(move || poll_loop(listener, shared))?
        };
        *shared.poller_join.lock() = Some(handle);
        Ok(TcpReactor { shared })
    }

    /// The port the listener is bound to.
    pub fn port(&self) -> u16 {
        self.shared.port
    }

    /// Opens an endpoint at `ip` (on the reactor's port) with a private
    /// mailbox. Fails with `AddrInUse` if the address already has an
    /// endpoint on this reactor.
    pub fn open(&self, ip: Ipv4Addr) -> io::Result<TcpEndpoint> {
        let (tx, rx) = mpsc::channel();
        let ep = self.register(ip, tx)?;
        Ok(TcpEndpoint {
            rx: Some(Mutex::new(rx)),
            ..ep
        })
    }

    /// Opens an endpoint at `ip` delivering into a caller-supplied
    /// shared queue — the many-nodes multiplexer feeds every hosted
    /// node from one queue and routes by the [`Delivery`] address. The
    /// returned endpoint's own `recv_timeout` always reports `Closed`;
    /// receive from the shared queue instead.
    pub fn open_with_queue(
        &self,
        ip: Ipv4Addr,
        tx: mpsc::Sender<Delivery>,
    ) -> io::Result<TcpEndpoint> {
        self.register(ip, tx)
    }

    fn register(&self, ip: Ipv4Addr, tx: mpsc::Sender<Delivery>) -> io::Result<TcpEndpoint> {
        let me = pack_addr(SocketAddrV4::new(ip, self.shared.port));
        let mut eps = self.shared.endpoints.write();
        if eps.contains_key(&me) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                "endpoint already registered on this reactor",
            ));
        }
        eps.insert(me, tx);
        Ok(TcpEndpoint {
            shared: Arc::clone(&self.shared),
            me,
            rx: None,
        })
    }

    /// How many endpoints are currently registered.
    pub fn endpoint_count(&self) -> usize {
        self.shared.endpoints.read().len()
    }

    /// Stops the reactor: drains queued outbound frames (bounded), joins
    /// the poller, closes every socket, and wakes all endpoint receivers
    /// (their mailboxes disconnect). Idempotent.
    ///
    /// The drain matters for graceful stops: a node queues its
    /// ShutdownAck and closes its transport immediately after, and the
    /// reply must reach the socket before the poller dies. Frames stuck
    /// behind a stalled peer are abandoned when the window closes.
    pub fn shutdown(&self) {
        if !self.shared.shutdown.load(Ordering::Acquire) {
            let deadline = Instant::now() + Duration::from_millis(500);
            while self.shared.unsent.load(Ordering::Acquire) != 0 && Instant::now() < deadline {
                self.shared.wake_poller();
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.wake_poller();
        if let Some(h) = self.shared.poller_join.lock().take() {
            let _ = h.join();
        }
        // Dropping the mailbox senders disconnects blocked receivers.
        self.shared.endpoints.write().clear();
        self.shared.pool.lock().clear();
    }
}

impl Drop for TcpReactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One virtual transport address on a [`TcpReactor`]. Implements
/// [`Transport`], so a `NodeRuntime` runs over an endpoint exactly as
/// it runs over a whole `TcpTransport` — co-hosted endpoints reach each
/// other over the loopback fast path, everyone else over the shared
/// socket.
pub struct TcpEndpoint {
    shared: Arc<Shared>,
    me: Addr,
    /// `None` for endpoints delivering into a shared queue.
    rx: Option<Mutex<mpsc::Receiver<Delivery>>>,
}

impl Transport for TcpEndpoint {
    fn local_addr(&self) -> Addr {
        self.me
    }

    fn send_traced(&self, to: Addr, msg: &WireMsg, trace: TraceCtx) -> Result<(), TransportError> {
        self.shared.send_from(to, msg, trace)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(WireMsg, TraceCtx), RecvError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(RecvError::Closed);
        }
        let Some(rx) = &self.rx else {
            // Shared-queue endpoints have no private mailbox.
            return Err(RecvError::Closed);
        };
        match rx.lock().recv_timeout(timeout) {
            Ok((_, msg, trace)) => Ok((msg, trace)),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    /// Unregisters this endpoint (its address stops resolving; inbound
    /// frames for it are dropped). The reactor keeps running for its
    /// other endpoints.
    fn shutdown(&self) {
        self.shared.endpoints.write().remove(&self.me);
    }
}

/// The poller: owns the listener and every connection, loops over
/// adopt → accept → flush-dirty → retry-backlog → scan-reads, and
/// parks for `poll_interval` when an iteration moves nothing.
fn poll_loop(listener: TcpListener, shared: Arc<Shared>) {
    *shared.poller.lock() = Some(std::thread::current());
    let floor_us = shared.cfg.poll_interval.as_micros() as u64;
    let cap_us = (shared.cfg.idle_scan_cap.as_micros() as u64).max(floor_us);
    let mut inbound: Vec<InboundConn> = Vec::new();
    let mut outbound: HashMap<Addr, OutboundConn> = HashMap::new();
    let mut blocked: Vec<Addr> = Vec::new();
    let mut dead: Vec<Addr> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    while !shared.shutdown.load(Ordering::Acquire) {
        let now_us = shared.us_since_epoch(Instant::now());
        let mut moved = false;

        // Adopt streams dialed by senders since the last pass.
        for (addr, stream) in shared.adopted.lock().drain(..) {
            outbound.insert(addr, OutboundConn::new(stream));
            moved = true;
        }

        // Accept everything waiting on the listener.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let dst = match stream.local_addr() {
                        // The address the remote dialed names the
                        // endpoint this connection is for.
                        Ok(SocketAddr::V4(v4)) => pack_addr(v4),
                        _ => continue,
                    };
                    inbound.push(InboundConn::new(stream, dst));
                    moved = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Flush peers with freshly queued frames.
        let mut dirty = std::mem::take(&mut *shared.dirty.lock());
        for addr in dirty.drain(..) {
            let Some(slot) = shared.pool.lock().get(&addr).cloned() else {
                continue;
            };
            slot.queued.store(false, Ordering::Release);
            match flush_peer(addr, &slot, &mut outbound, &shared) {
                FlushOutcome::Done => moved = true,
                FlushOutcome::Backlog => {
                    moved = true;
                    if !blocked.contains(&addr) {
                        blocked.push(addr);
                    }
                }
                FlushOutcome::Dead => moved = true,
                FlushOutcome::Missing => {
                    // The stream is staged in `adopted` but we drained
                    // that list before the sender pushed (or a sender
                    // is mid-dial, holding the link lock); requeue for
                    // the next pass. `try_lock` keeps the poller from
                    // blocking behind a dial in progress.
                    let maybe_connected = slot.link.try_lock().is_none_or(|l| l.connected);
                    if maybe_connected && !slot.queued.swap(true, Ordering::AcqRel) {
                        shared.dirty.lock().push(addr);
                    }
                }
            }
        }

        // Retry carries blocked on a full kernel buffer.
        blocked.retain(|&addr| {
            let Some(slot) = shared.pool.lock().get(&addr).cloned() else {
                return false;
            };
            matches!(
                flush_peer(addr, &slot, &mut outbound, &shared),
                FlushOutcome::Backlog
            )
        });

        // Scan inbound connections that are due.
        let mut i = 0;
        while i < inbound.len() {
            if inbound[i].scan.due(now_us) {
                let tx = shared.endpoints.read().get(&inbound[i].dst()).cloned();
                let state = inbound[i].pump(&mut scratch, tx.as_ref(), &shared.metrics);
                if state == ConnState::Closed {
                    inbound.swap_remove(i);
                    continue;
                }
                moved |= state == ConnState::Active;
                inbound[i].scan.record(state, now_us, floor_us, cap_us);
            }
            i += 1;
        }

        // Probe outbound connections for EOF/RST — early notice that a
        // peer restarted, so the next send re-dials instead of writing
        // into a corpse.
        dead.clear();
        for (&addr, conn) in outbound.iter_mut() {
            if conn.scan.due(now_us) && !conn.has_backlog() {
                let state = conn.probe_eof(&mut scratch);
                if state == ConnState::Closed {
                    dead.push(addr);
                } else {
                    conn.scan.record(state, now_us, floor_us, cap_us);
                }
            }
        }
        for addr in dead.drain(..) {
            outbound.remove(&addr);
            if let Some(slot) = shared.pool.lock().get(&addr).cloned() {
                // A graceful close is not a dial failure: mark the link
                // down without opening the breaker, so the next send
                // dials fresh immediately.
                if let Some(mut link) = slot.link.try_lock() {
                    link.connected = false;
                }
                shared.clear_pending(&slot);
            }
        }

        if moved {
            // Stay hot through a burst; yield so node threads on a
            // saturated box still get the core.
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(shared.cfg.poll_interval);
        }
    }
}

enum FlushOutcome {
    /// Pending queue drained to the socket.
    Done,
    /// Kernel buffer full; carry retained for a later pass.
    Backlog,
    /// The connection died mid-write (breaker opened, batch lost).
    Dead,
    /// No adopted connection for this peer (yet).
    Missing,
}

/// Swap-and-write loop for one peer: repeatedly swaps the pending queue
/// into the connection's carry and writes it, until the queue is
/// observed empty or the socket pushes back.
fn flush_peer(
    addr: Addr,
    slot: &PeerSlot,
    outbound: &mut HashMap<Addr, OutboundConn>,
    shared: &Shared,
) -> FlushOutcome {
    let Some(conn) = outbound.get_mut(&addr) else {
        return FlushOutcome::Missing;
    };
    loop {
        if !conn.has_backlog() {
            let mut q = slot.pending.lock();
            if q.buf.is_empty() {
                return FlushOutcome::Done;
            }
            conn.load(&mut q);
        }
        let in_carry = conn.frames_in_carry();
        match conn.flush(&shared.metrics) {
            Ok(true) => {
                // The whole carry reached the kernel: charge those
                // frames off the shutdown-drain ledger.
                shared.unsent.fetch_sub(in_carry, Ordering::AcqRel);
                continue; // batch drained; more may have queued
            }
            Ok(false) => return FlushOutcome::Backlog,
            Err(_) => {
                // The pooled connection died; the carried batch dies
                // with it (TCP gives the same guarantee: a successful
                // write only means the kernel buffered the bytes).
                // Open the breaker so the next send backs off instead
                // of re-dialing immediately.
                shared.unsent.fetch_sub(in_carry, Ordering::AcqRel);
                outbound.remove(&addr);
                let now = Instant::now();
                if let Some(mut link) = slot.link.try_lock() {
                    link.connected = false;
                    link.failures += 1;
                    shared.open_breaker(slot, &mut link, now);
                }
                shared.clear_pending(slot);
                return FlushOutcome::Dead;
            }
        }
    }
}
