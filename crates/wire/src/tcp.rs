//! Real TCP transport over `std::net`, event-loop edition.
//!
//! [`TcpTransport`] is the ordinary one-node-per-process transport: a
//! [`TcpReactor`] (one poller thread driving every accept, read, and
//! buffered write — see [`crate::reactor`] for the architecture) with a
//! single registered endpoint. The per-connection reader threads of the
//! original implementation are gone; total thread count per process is
//! constant in the number of connections, which is what lets
//! `d2-node serve-many` host a 1,000-node cluster in one process.
//!
//! The combining-lock write path survives the rewrite: senders encode
//! frames (zero-copy, via [`crate::codec::encode_traced_into`]) into a
//! shared per-peer pending buffer; the poller drains whole batches with
//! one `write` each, so a burst of small frames (acks, neighbor ads,
//! metric scrapes) shares a syscall. So does the loss contract: once a
//! send returns `Ok`, a later connection death takes the queued batch
//! with it — the same guarantee TCP itself gives (`write` success only
//! means the kernel buffered the bytes), and every D2 protocol layer
//! already tolerates message loss. Dead peers still fail fast: dialing
//! happens inline on the sender's thread (bounded by
//! [`TcpConfig::connect_timeout`]), and a reconnect-backoff circuit
//! breaker ([`d2_ring::RetryPolicy`]) rejects sends without touching
//! the network while a peer is inside its backoff window.
//!
//! Addresses need no directory: on IPv4 the logical [`Addr`] *is* the
//! socket address, bijectively packed as `(ip << 16) | port` (48 bits,
//! see [`pack_addr`]). Any peer mentioned in a ring message is therefore
//! directly routable, exactly as slot indices are in the channel
//! transport.

use crate::metrics::NetMetrics;
use crate::reactor::{TcpEndpoint, TcpReactor};
use crate::transport::{RecvError, Transport, TransportError};
use crate::WireMsg;
use d2_obs::TraceCtx;
use d2_ring::messages::Addr;
use d2_ring::RetryPolicy;
use std::io;
use std::net::{Ipv4Addr, SocketAddrV4};
use std::time::Duration;

/// Packs an IPv4 socket address into a logical [`Addr`]:
/// `(ip as u32) << 16 | port`. The mapping is a bijection, so ring
/// messages can carry plain `Addr`s and every peer they mention is
/// directly routable without a membership directory.
pub fn pack_addr(sock: SocketAddrV4) -> Addr {
    const {
        assert!(
            usize::BITS >= 64,
            "TCP addr packing needs 64-bit usize (32-bit IP + 16-bit port)"
        )
    };
    ((u32::from(*sock.ip()) as usize) << 16) | sock.port() as usize
}

/// Inverse of [`pack_addr`].
pub fn unpack_addr(addr: Addr) -> SocketAddrV4 {
    SocketAddrV4::new(Ipv4Addr::from((addr >> 16) as u32), (addr & 0xffff) as u16)
}

/// Tuning knobs for [`TcpTransport`] / [`TcpReactor`].
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// How long a sender's inline dial waits for a connection attempt.
    pub connect_timeout: Duration,
    /// How long the poller parks when an iteration moves no bytes (it
    /// is unparked early by any send). Bounds the added latency of an
    /// idle-to-active transition; smaller burns more idle CPU.
    pub poll_interval: Duration,
    /// Ceiling of the per-connection idle scan backoff: a connection
    /// that has been silent this long is probed at most this often.
    /// Bounds both the syscall budget of thousands of idle connections
    /// and the extra latency of the first frame after a long silence.
    pub idle_scan_cap: Duration,
    /// Per-peer cap on queued-but-unsent bytes. When a peer stops
    /// draining its socket and the backlog reaches this cap, further
    /// sends fail fast with `PeerUnreachable` instead of buffering
    /// without limit.
    pub max_pending_bytes: usize,
    /// Reconnect backoff schedule, reusing the churn retry policy: after
    /// `n` consecutive failures the next attempt waits
    /// [`RetryPolicy::backoff_us`]`(n)` microseconds; sends inside that
    /// window fail fast without touching the network.
    pub retry: RetryPolicy,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(250),
            poll_interval: Duration::from_micros(200),
            idle_scan_cap: Duration::from_millis(10),
            max_pending_bytes: 8 << 20,
            retry: RetryPolicy {
                max_retries: u32::MAX, // reconnect forever; the breaker paces it
                hop_timeout_us: 250_000,
                backoff_base_us: 50_000,
                backoff_cap_us: 1_000_000,
            },
        }
    }
}

/// A message transport over real TCP sockets: a [`TcpReactor`] with one
/// registered endpoint. Two threads total (the caller's and the
/// poller's), regardless of how many peers connect.
pub struct TcpTransport {
    reactor: TcpReactor,
    primary: TcpEndpoint,
}

impl TcpTransport {
    /// Binds a listener on `ip:port` (port 0 picks a free port) and
    /// starts the poller. The transport's [`Addr`] is derived from the
    /// actual bound address.
    pub fn bind(
        ip: Ipv4Addr,
        port: u16,
        cfg: TcpConfig,
        metrics: std::sync::Arc<NetMetrics>,
    ) -> io::Result<TcpTransport> {
        let reactor = TcpReactor::bind(ip, port, cfg, metrics)?;
        let primary = reactor.open(ip)?;
        Ok(TcpTransport { reactor, primary })
    }

    /// The socket address peers should connect to.
    pub fn socket_addr(&self) -> SocketAddrV4 {
        unpack_addr(self.primary.local_addr())
    }

    /// The underlying reactor, for opening additional virtual
    /// endpoints on the same socket (see [`TcpReactor::open`]).
    pub fn reactor(&self) -> &TcpReactor {
        &self.reactor
    }
}

impl Transport for TcpTransport {
    fn local_addr(&self) -> Addr {
        self.primary.local_addr()
    }

    fn send_traced(&self, to: Addr, msg: &WireMsg, trace: TraceCtx) -> Result<(), TransportError> {
        self.primary.send_traced(to, msg, trace)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(WireMsg, TraceCtx), RecvError> {
        self.primary.recv_timeout(timeout)
    }

    fn shutdown(&self) {
        self.reactor.shutdown();
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{self, Request};
    use std::io::Write;
    use std::net::{SocketAddr, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    fn msg(req_id: u64) -> WireMsg {
        WireMsg::Request {
            req_id,
            from: 1,
            body: Request::Get {
                key: d2_types::Key::from_u64(req_id),
            },
        }
    }

    /// Socket-level metrics are counted by the poller thread, so they
    /// trail message delivery slightly; spin until `key` reaches
    /// `want` (all tests assert *final* values).
    fn wait_counter(m: &NetMetrics, key: &str, want: u64) -> u64 {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let got = m.snapshot().counter(key);
            if got >= want || Instant::now() > deadline {
                return got;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn addr_packing_is_bijective() {
        for (ip, port) in [
            (Ipv4Addr::LOCALHOST, 1u16),
            (Ipv4Addr::new(10, 1, 2, 3), 65535),
            (Ipv4Addr::new(255, 255, 255, 255), 0),
        ] {
            let sock = SocketAddrV4::new(ip, port);
            assert_eq!(unpack_addr(pack_addr(sock)), sock);
        }
    }

    #[test]
    fn two_transports_exchange_frames() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        a.send(b.local_addr(), &msg(1)).unwrap();
        let ctx = TraceCtx::root(0x5151).child(0x99);
        a.send_traced(b.local_addr(), &msg(2), ctx).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap(),
            (msg(1), TraceCtx::NONE)
        );
        // The trace context survives the socket round trip.
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap(),
            (msg(2), ctx)
        );
        // Replies flow over b's own outbound connection.
        b.send(a.local_addr(), &msg(3)).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap(),
            (msg(3), TraceCtx::NONE)
        );
        assert_eq!(wait_counter(&m, "net.msgs", 6), 6);
        let reg = m.snapshot();
        assert!(reg.counter("net.bytes_out") > 0);
        assert!(reg.counter("net.bytes_in") > 0);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn loopback_counts_separately_from_wire_traffic() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        a.send(a.local_addr(), &msg(7)).unwrap();
        a.send(a.local_addr(), &msg(8)).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(7));
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(8));
        let reg = m.snapshot();
        // No sockets were involved: loopback must not skew mean-frame-size
        // math (bytes / msgs) with zero-byte phantom frames.
        assert_eq!(reg.counter("net.loopback_msgs"), 2);
        assert_eq!(reg.counter("net.msgs"), 0);
        assert_eq!(reg.counter("net.bytes_out"), 0);
        assert_eq!(reg.counter("net.bytes_in"), 0);
        a.shutdown();
    }

    #[test]
    fn concurrent_senders_coalesce_and_deliver_everything() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50;
        let m = Arc::new(NetMetrics::new());
        let a = Arc::new(
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap(),
        );
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let to = b.local_addr();
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        a.send(to, &msg(t * PER_THREAD + i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (THREADS as u64) * PER_THREAD;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..total {
            let (m, _) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            if let WireMsg::Request { req_id, .. } = m {
                seen.insert(req_id);
            }
        }
        assert_eq!(seen.len(), total as usize, "every frame delivered intact");
        assert_eq!(wait_counter(&m, "net.msgs_out", total), total);
        assert_eq!(wait_counter(&m, "net.msgs_in", total), total);
        let reg = m.snapshot();
        assert_eq!(reg.counter("net.bytes_out"), reg.counter("net.bytes_in"));
        // Coalesced frames (if any) are a subset of all frames sent.
        assert!(reg.counter("net.coalesced_frames") <= total);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dead_peer_fails_fast_and_backs_off() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b = TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m).unwrap();
        let dead = b.local_addr();
        b.shutdown();
        drop(b);
        assert_eq!(
            a.send(dead, &msg(1)),
            Err(TransportError::PeerUnreachable(dead))
        );
        // Inside the backoff window the breaker fails without connecting.
        let t0 = Instant::now();
        assert_eq!(
            a.send(dead, &msg(2)),
            Err(TransportError::PeerUnreachable(dead))
        );
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "breaker must fail fast"
        );
        a.shutdown();
    }

    #[test]
    fn reconnect_after_peer_restarts() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b_sock = b.socket_addr();
        let b_addr = b.local_addr();
        a.send(b_addr, &msg(1)).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(1));
        b.shutdown();
        drop(b);
        // The pooled stream is stale; the first sends fail (EOF probe or
        // write error), opening the breaker.
        while a.send(b_addr, &msg(2)) == Ok(()) {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Peer comes back on the same port.
        let b2 = TcpTransport::bind(*b_sock.ip(), b_sock.port(), TcpConfig::default(), m.clone())
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if a.send(b_addr, &msg(3)).is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "never reconnected");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(b2.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(3));
        a.shutdown();
        b2.shutdown();
    }

    #[test]
    fn garbage_connection_is_dropped_not_fatal() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let mut s = TcpStream::connect(SocketAddr::V4(a.socket_addr())).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        drop(s);
        // The garbage costs its connection; real traffic still flows.
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        b.send(a.local_addr(), &msg(9)).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(9));
        assert!(wait_counter(&m, "net.decode_errors", 1) >= 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn partial_frames_across_readiness_events() {
        // A frame trickling in a few bytes per readiness event must be
        // reassembled intact: TCP guarantees nothing about boundaries,
        // and the reactor's read state machine carries the tail across
        // poll iterations.
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let ctx = TraceCtx::root(0x7777).child(3);
        let bytes = codec::encode_traced(&msg(42), ctx);
        let mut s = TcpStream::connect(SocketAddr::V4(a.socket_addr())).unwrap();
        s.set_nodelay(true).unwrap();
        for chunk in bytes.chunks(3) {
            s.write_all(chunk).unwrap();
            s.flush().unwrap();
            // Longer than the idle scan cap, so the poller sees many
            // separate readiness events, not one buffered blob.
            std::thread::sleep(Duration::from_millis(12));
        }
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap(),
            (msg(42), ctx)
        );
        // Two frames back to back in one readiness event both decode.
        let mut two = codec::encode_traced(&msg(43), TraceCtx::NONE);
        two.extend_from_slice(&codec::encode_traced(&msg(44), TraceCtx::NONE));
        s.write_all(&two).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(43));
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(44));
        a.shutdown();
    }

    #[test]
    fn write_backpressure_fails_fast_when_peer_stalls() {
        // A peer that accepts but never reads: once the kernel buffer
        // and the bounded pending queue fill, sends must fail fast with
        // PeerUnreachable instead of buffering without limit (or
        // blocking the sender).
        let stall = std::net::TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let stall_addr = pack_addr(match stall.local_addr().unwrap() {
            SocketAddr::V4(v4) => v4,
            _ => unreachable!(),
        });
        let _held: std::sync::mpsc::Receiver<TcpStream> = {
            let (tx, rx) = std::sync::mpsc::channel();
            std::thread::spawn(move || {
                // Hold accepted sockets open without reading them.
                while let Ok((s, _)) = stall.accept() {
                    if tx.send(s).is_err() {
                        break;
                    }
                }
            });
            rx
        };
        let cfg = TcpConfig {
            max_pending_bytes: 64 << 10,
            ..TcpConfig::default()
        };
        let m = Arc::new(NetMetrics::new());
        let a = TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, cfg, m).unwrap();
        let big = WireMsg::Request {
            req_id: 1,
            from: 1,
            body: Request::Put {
                key: d2_types::Key::from_u64(1),
                fanout: 0,
                stored: 0,
                data: vec![0xD2; 32 << 10],
            },
        };
        let mut saw_backpressure = false;
        for _ in 0..4096 {
            match a.send(stall_addr, &big) {
                Ok(()) => {}
                Err(TransportError::PeerUnreachable(_)) => {
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e:?}"),
            }
        }
        assert!(saw_backpressure, "stalled peer never triggered the cap");
        a.shutdown();
    }

    #[test]
    fn survives_peer_reconnect_storm() {
        // Connection churn regression: a peer that restarts on the same
        // port over and over must never wedge the sender's transport —
        // each generation reconnects and delivers.
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        // Pin a port by binding once, then reuse it each generation.
        let b0 =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b_sock = b0.socket_addr();
        let b_addr = b0.local_addr();
        drop(b0);
        for generation in 0..10u64 {
            let b =
                TcpTransport::bind(*b_sock.ip(), b_sock.port(), TcpConfig::default(), m.clone())
                    .unwrap();
            // Sends may fail while the breaker from the previous
            // generation's death is open; retry until this generation
            // hears us.
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                let _ = a.send(b_addr, &msg(generation));
                match b.recv_timeout(Duration::from_millis(50)) {
                    Ok((got, _)) => {
                        assert_eq!(got, msg(generation));
                        break;
                    }
                    Err(_) => assert!(
                        Instant::now() < deadline,
                        "generation {generation} never heard from sender"
                    ),
                }
            }
            b.shutdown();
        }
        assert!(m.snapshot().counter("net.reconnects") >= 5);
        a.shutdown();
    }
}
