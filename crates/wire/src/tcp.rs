//! A real TCP transport over `std::net` threads.
//!
//! One [`TcpTransport`] per node/client: a listener thread accepts
//! inbound connections and spawns a framed reader per connection; all
//! decoded messages funnel into one incoming queue that
//! [`Transport::recv_timeout`] drains. Outbound, the transport keeps a
//! pooled connection per peer, reconnecting with capped exponential
//! backoff ([`d2_ring::RetryPolicy`]) and failing fast while a peer is
//! inside its backoff window — a circuit breaker, so one dead peer
//! cannot stall the node's event loop.
//!
//! ## Write coalescing
//!
//! Each peer slot is a *combining lock*: senders encode their frame
//! (zero-copy, via [`codec::encode_traced_into`]) into a shared pending
//! buffer under a short queue lock, then contend for the connection
//! lock. Whoever holds the connection drains the entire pending batch
//! with one `write_all`, so a burst of small frames (acks, neighbor
//! ads, metric scrapes) shares a single syscall instead of paying one
//! each; `net.coalesced_frames` counts frames that rode in multi-frame
//! batches. Both the pending buffer and the drain buffer are reused
//! across sends, so the steady-state send path allocates nothing.
//!
//! A consequence of combining: when a batched write fails, only the
//! sender holding the connection observes the `Err` — senders whose
//! frames were batched into that write have already returned `Ok`.
//! That is the same guarantee TCP itself gives (`write_all` success
//! only means the kernel buffered the bytes), and every D2 protocol
//! layer already tolerates message loss. Senders arriving *after* the
//! failure see the opened breaker and fail fast.
//!
//! Addresses need no directory: on IPv4 the logical [`Addr`] *is* the
//! socket address, bijectively packed as `(ip << 16) | port` (48 bits,
//! see [`pack_addr`]). Any peer mentioned in a ring message is therefore
//! directly routable, exactly as slot indices are in the channel
//! transport.

use crate::codec::{self, WireMsg, HEADER_LEN};
use crate::metrics::NetMetrics;
use crate::transport::{RecvError, Transport, TransportError};
use d2_obs::TraceCtx;
use d2_ring::messages::Addr;
use d2_ring::RetryPolicy;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Packs an IPv4 socket address into a logical [`Addr`]:
/// `(ip as u32) << 16 | port`. The mapping is a bijection, so ring
/// messages can carry plain `Addr`s and every peer they mention is
/// directly routable without a membership directory.
pub fn pack_addr(sock: SocketAddrV4) -> Addr {
    const {
        assert!(
            usize::BITS >= 64,
            "TCP addr packing needs 64-bit usize (32-bit IP + 16-bit port)"
        )
    };
    ((u32::from(*sock.ip()) as usize) << 16) | sock.port() as usize
}

/// Inverse of [`pack_addr`].
pub fn unpack_addr(addr: Addr) -> SocketAddrV4 {
    SocketAddrV4::new(Ipv4Addr::from((addr >> 16) as u32), (addr & 0xffff) as u16)
}

/// Tuning knobs for [`TcpTransport`].
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// How long to wait for a connection attempt.
    pub connect_timeout: Duration,
    /// Per-frame write timeout; a peer that stops draining its socket is
    /// declared unreachable after this.
    pub write_timeout: Duration,
    /// Reader poll slice: how often blocked readers re-check shutdown.
    pub read_slice: Duration,
    /// Reconnect backoff schedule, reusing the churn retry policy: after
    /// `n` consecutive failures the next attempt waits
    /// [`RetryPolicy::backoff_us`]`(n)` microseconds; sends inside that
    /// window fail fast without touching the network.
    pub retry: RetryPolicy,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(2),
            read_slice: Duration::from_millis(100),
            retry: RetryPolicy {
                max_retries: u32::MAX, // reconnect forever; the breaker paces it
                hop_timeout_us: 250_000,
                backoff_base_us: 50_000,
                backoff_cap_us: 1_000_000,
            },
        }
    }
}

/// Outbound connection state for one peer: either a live pooled stream
/// or a failure count driving the reconnect backoff, plus the reusable
/// drain buffer batches are written from.
#[derive(Default)]
struct PeerConn {
    stream: Option<TcpStream>,
    failures: u32,
    retry_at: Option<Instant>,
    /// Swap target for the pending queue: the connection holder swaps
    /// the queued bytes in here (empty between drains) and writes the
    /// whole batch with one syscall. Reused forever, so steady-state
    /// sends allocate nothing.
    drain: Vec<u8>,
}

/// Encoded-but-unsent frames for one peer, appended by senders under a
/// short lock while some other sender holds the connection.
#[derive(Default)]
struct PendingFrames {
    buf: Vec<u8>,
    frames: u64,
}

/// One peer's outbound state: the combining lock (`conn`) plus the
/// pending queue senders park frames in, plus a lock-free mirror of the
/// breaker deadline so breaker-open sends fail fast without contending
/// on either mutex.
#[derive(Default)]
struct PeerSlot {
    conn: Mutex<PeerConn>,
    pending: Mutex<PendingFrames>,
    /// Breaker deadline in microseconds since the transport epoch;
    /// 0 = breaker closed. Authoritative copy is `PeerConn::retry_at`.
    retry_at_us: AtomicU64,
}

struct Inner {
    me: Addr,
    cfg: TcpConfig,
    /// Zero point for `PeerSlot::retry_at_us` (set at bind time, before
    /// any breaker deadline can be computed).
    epoch: Instant,
    shutdown: AtomicBool,
    incoming: mpsc::Sender<(WireMsg, TraceCtx)>,
    metrics: Arc<NetMetrics>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn us_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }
}

/// A message transport over real TCP sockets (`std::net`, one reader
/// thread per inbound connection, pooled outbound connections).
pub struct TcpTransport {
    inner: Arc<Inner>,
    rx: Mutex<mpsc::Receiver<(WireMsg, TraceCtx)>>,
    /// Per-peer connection state behind per-peer locks: the outer map
    /// lock is held only to look up the entry, never across a connect
    /// or write, so one slow peer cannot stall sends to every other.
    pool: Mutex<HashMap<Addr, Arc<PeerSlot>>>,
    acceptor: Mutex<Option<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Binds a listener on `ip:port` (port 0 picks a free port) and
    /// starts the accept loop. The transport's [`Addr`] is derived from
    /// the actual bound address.
    pub fn bind(
        ip: Ipv4Addr,
        port: u16,
        cfg: TcpConfig,
        metrics: Arc<NetMetrics>,
    ) -> io::Result<TcpTransport> {
        // Even with port 0 (kernel-assigned, collision-free by design)
        // the bind can transiently fail with AddrInUse when the
        // ephemeral range is briefly exhausted by TIME_WAIT sockets —
        // multi-process test clusters churn through hundreds of
        // connections. Retry the rare race instead of failing the node.
        let mut attempt: u64 = 0;
        let listener = loop {
            match TcpListener::bind(SocketAddrV4::new(ip, port)) {
                Ok(l) => break l,
                Err(e) if e.kind() == io::ErrorKind::AddrInUse && attempt < 16 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(5 * attempt));
                }
                Err(e) => return Err(e),
            }
        };
        listener.set_nonblocking(true)?;
        let bound = match listener.local_addr()? {
            SocketAddr::V4(v4) => v4,
            SocketAddr::V6(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "TcpTransport is IPv4-only (addr packing)",
                ))
            }
        };
        let (tx, rx) = mpsc::channel();
        let inner = Arc::new(Inner {
            me: pack_addr(bound),
            cfg,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            incoming: tx,
            metrics,
            readers: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(listener, inner))
        };
        Ok(TcpTransport {
            inner,
            rx: Mutex::new(rx),
            pool: Mutex::new(HashMap::new()),
            acceptor: Mutex::new(Some(acceptor)),
        })
    }

    /// The socket address peers should connect to.
    pub fn socket_addr(&self) -> SocketAddrV4 {
        unpack_addr(self.inner.me)
    }

    fn connect(
        &self,
        to: Addr,
        slot: &PeerSlot,
        peer: &mut PeerConn,
        now: Instant,
    ) -> Result<(), TransportError> {
        if let Some(at) = peer.retry_at {
            if now < at {
                return Err(TransportError::PeerUnreachable(to)); // breaker open
            }
        }
        let sock = SocketAddr::V4(unpack_addr(to));
        match TcpStream::connect_timeout(&sock, self.inner.cfg.connect_timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_write_timeout(Some(self.inner.cfg.write_timeout));
                if peer.failures > 0 {
                    self.inner.metrics.reconnect();
                }
                peer.stream = Some(stream);
                peer.retry_at = None;
                slot.retry_at_us.store(0, Ordering::Release);
                Ok(())
            }
            Err(_) => {
                peer.failures += 1;
                self.open_breaker(slot, peer, now);
                Err(TransportError::PeerUnreachable(to))
            }
        }
    }

    /// Arms the reconnect backoff window (and its lock-free mirror) after
    /// `peer.failures` consecutive failures.
    fn open_breaker(&self, slot: &PeerSlot, peer: &mut PeerConn, now: Instant) {
        let backoff = self.inner.cfg.retry.backoff_us(peer.failures);
        let at = now + Duration::from_micros(backoff);
        peer.retry_at = Some(at);
        // `max(1)`: 0 is the breaker-closed sentinel.
        slot.retry_at_us
            .store(self.inner.us_since_epoch(at).max(1), Ordering::Release);
    }

    /// Holding the connection lock, repeatedly swaps the pending queue
    /// into the drain buffer and writes each batch with one syscall,
    /// until the queue is observed empty. Frames queued by other senders
    /// while we hold the lock ride along in our batches (they see an
    /// empty queue and return without writing).
    fn drain(&self, to: Addr, slot: &PeerSlot, peer: &mut PeerConn) -> Result<(), TransportError> {
        loop {
            debug_assert!(peer.drain.is_empty());
            let frames = {
                let mut q = slot.pending.lock();
                if q.buf.is_empty() {
                    // A previous lock holder already drained our frame.
                    // If it left a live stream the frame was written; if
                    // not, the batch died with the connection — report
                    // unreachable rather than claim a send that never
                    // hit a socket.
                    return if peer.stream.is_some() {
                        Ok(())
                    } else {
                        Err(TransportError::PeerUnreachable(to))
                    };
                }
                std::mem::swap(&mut peer.drain, &mut q.buf);
                std::mem::take(&mut q.frames)
            };
            let now = Instant::now();
            if peer.stream.is_none() {
                if let Err(e) = self.connect(to, slot, peer, now) {
                    peer.drain.clear();
                    return Err(e);
                }
            }
            let stream = peer.stream.as_mut().expect("connected above");
            match stream.write_all(&peer.drain) {
                Ok(()) => {
                    peer.failures = 0;
                    self.inner.metrics.frames_out(frames, peer.drain.len());
                    if frames >= 2 {
                        self.inner.metrics.coalesced_write(frames);
                    }
                    peer.drain.clear();
                    // Loop: more frames may have queued during the write.
                }
                Err(_) => {
                    // The pooled connection died; drop it and open the
                    // breaker so the next send backs off instead of
                    // re-timing-out immediately.
                    peer.stream = None;
                    peer.failures += 1;
                    self.open_breaker(slot, peer, now);
                    peer.drain.clear();
                    return Err(TransportError::PeerUnreachable(to));
                }
            }
        }
    }
}

impl Transport for TcpTransport {
    fn local_addr(&self) -> Addr {
        self.inner.me
    }

    fn send_traced(&self, to: Addr, msg: &WireMsg, trace: TraceCtx) -> Result<(), TransportError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(TransportError::Closed);
        }
        if to == self.inner.me {
            // Loopback without a socket round trip: no frame is encoded,
            // so count it separately from real wire traffic.
            self.inner
                .incoming
                .send((msg.clone(), trace))
                .map_err(|_| TransportError::Closed)?;
            self.inner.metrics.loopback_msg();
            return Ok(());
        }
        let slot = Arc::clone(self.pool.lock().entry(to).or_default());
        // Breaker fast-path: while the backoff window is open, fail
        // without queueing a frame or contending on the peer locks.
        let retry_at = slot.retry_at_us.load(Ordering::Acquire);
        if retry_at != 0 && self.inner.us_since_epoch(Instant::now()) < retry_at {
            return Err(TransportError::PeerUnreachable(to));
        }
        {
            let mut q = slot.pending.lock();
            q.frames += 1;
            codec::encode_traced_into(&mut q.buf, msg, trace);
        }
        let mut peer = slot.conn.lock();
        self.drain(to, &slot, &mut peer)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(WireMsg, TraceCtx), RecvError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(RecvError::Closed);
        }
        match self.rx.lock().recv_timeout(timeout) {
            Ok(pair) => Ok(pair),
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(h) = self.acceptor.lock().take() {
            let _ = h.join();
        }
        for h in self.inner.readers.lock().drain(..) {
            let _ = h.join();
        }
        self.pool.lock().clear();
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while !inner.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(inner.cfg.read_slice));
                let inner2 = Arc::clone(&inner);
                let h = std::thread::spawn(move || read_loop(stream, inner2));
                inner.readers.lock().push(h);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads `buf.len()` bytes, tolerating read-timeout slices (used to poll
/// the shutdown flag). Returns `Ok(false)` on clean EOF at offset 0,
/// `Err` on mid-frame EOF or hard IO errors, `Ok(true)` on success.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], inner: &Inner) -> io::Result<bool> {
    let mut off = 0;
    while off < buf.len() {
        if inner.shutdown.load(Ordering::Acquire) {
            return Ok(false);
        }
        match stream.read(&mut buf[off..]) {
            Ok(0) => {
                if off == 0 {
                    return Ok(false); // clean close between frames
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof mid-frame",
                ));
            }
            Ok(n) => off += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // timeout slice elapsed; re-check shutdown
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

fn read_loop(mut stream: TcpStream, inner: Arc<Inner>) {
    let mut hdr = [0u8; HEADER_LEN];
    loop {
        match read_full(&mut stream, &mut hdr, &inner) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        let (version, tag, len) = match codec::decode_header(&hdr) {
            Ok(v) => v,
            Err(_) => {
                // Strict protocol: a malformed header costs the
                // connection (we cannot resynchronize a byte stream).
                inner.metrics.decode_error();
                return;
            }
        };
        let mut payload = vec![0u8; len];
        match read_full(&mut stream, &mut payload, &inner) {
            Ok(true) => {}
            Ok(false) | Err(_) => return,
        }
        match codec::decode_payload(version, tag, &payload) {
            Ok(pair) => {
                inner.metrics.frame_in(HEADER_LEN + len);
                if inner.incoming.send(pair).is_err() {
                    return; // transport dropped
                }
            }
            Err(_) => {
                inner.metrics.decode_error();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Request;

    fn msg(req_id: u64) -> WireMsg {
        WireMsg::Request {
            req_id,
            from: 1,
            body: Request::Get {
                key: d2_types::Key::from_u64(req_id),
            },
        }
    }

    #[test]
    fn addr_packing_is_bijective() {
        for (ip, port) in [
            (Ipv4Addr::LOCALHOST, 1u16),
            (Ipv4Addr::new(10, 1, 2, 3), 65535),
            (Ipv4Addr::new(255, 255, 255, 255), 0),
        ] {
            let sock = SocketAddrV4::new(ip, port);
            assert_eq!(unpack_addr(pack_addr(sock)), sock);
        }
    }

    #[test]
    fn two_transports_exchange_frames() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        a.send(b.local_addr(), &msg(1)).unwrap();
        let ctx = TraceCtx::root(0x5151).child(0x99);
        a.send_traced(b.local_addr(), &msg(2), ctx).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap(),
            (msg(1), TraceCtx::NONE)
        );
        // The trace context survives the socket round trip.
        assert_eq!(
            b.recv_timeout(Duration::from_secs(5)).unwrap(),
            (msg(2), ctx)
        );
        // Replies flow over b's own outbound connection.
        b.send(a.local_addr(), &msg(3)).unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_secs(5)).unwrap(),
            (msg(3), TraceCtx::NONE)
        );
        let reg = m.snapshot();
        assert!(reg.counter("net.bytes_out") > 0);
        assert!(reg.counter("net.bytes_in") > 0);
        assert_eq!(reg.counter("net.msgs"), 6);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn loopback_counts_separately_from_wire_traffic() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        a.send(a.local_addr(), &msg(7)).unwrap();
        a.send(a.local_addr(), &msg(8)).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(7));
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(8));
        let reg = m.snapshot();
        // No sockets were involved: loopback must not skew mean-frame-size
        // math (bytes / msgs) with zero-byte phantom frames.
        assert_eq!(reg.counter("net.loopback_msgs"), 2);
        assert_eq!(reg.counter("net.msgs"), 0);
        assert_eq!(reg.counter("net.bytes_out"), 0);
        assert_eq!(reg.counter("net.bytes_in"), 0);
        a.shutdown();
    }

    #[test]
    fn concurrent_senders_coalesce_and_deliver_everything() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50;
        let m = Arc::new(NetMetrics::new());
        let a = Arc::new(
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap(),
        );
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let to = b.local_addr();
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        a.send(to, &msg(t * PER_THREAD + i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (THREADS as u64) * PER_THREAD;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..total {
            let (m, _) = b.recv_timeout(Duration::from_secs(5)).unwrap();
            if let WireMsg::Request { req_id, .. } = m {
                seen.insert(req_id);
            }
        }
        assert_eq!(seen.len(), total as usize, "every frame delivered intact");
        let reg = m.snapshot();
        assert_eq!(reg.counter("net.msgs_out"), total);
        assert_eq!(reg.counter("net.msgs_in"), total);
        assert_eq!(reg.counter("net.bytes_out"), reg.counter("net.bytes_in"));
        // Coalesced frames (if any) are a subset of all frames sent.
        assert!(reg.counter("net.coalesced_frames") <= total);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn dead_peer_fails_fast_and_backs_off() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b = TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m).unwrap();
        let dead = b.local_addr();
        b.shutdown();
        drop(b);
        assert_eq!(
            a.send(dead, &msg(1)),
            Err(TransportError::PeerUnreachable(dead))
        );
        // Inside the backoff window the breaker fails without connecting.
        let t0 = Instant::now();
        assert_eq!(
            a.send(dead, &msg(2)),
            Err(TransportError::PeerUnreachable(dead))
        );
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "breaker must fail fast"
        );
        a.shutdown();
    }

    #[test]
    fn reconnect_after_peer_restarts() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let b_sock = b.socket_addr();
        let b_addr = b.local_addr();
        a.send(b_addr, &msg(1)).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(1));
        b.shutdown();
        drop(b);
        // The pooled stream is stale; the first sends fail, opening the
        // breaker.
        while a.send(b_addr, &msg(2)) == Ok(()) {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Peer comes back on the same port.
        let b2 = TcpTransport::bind(*b_sock.ip(), b_sock.port(), TcpConfig::default(), m.clone())
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if a.send(b_addr, &msg(3)).is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "never reconnected");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(b2.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(3));
        assert!(m.snapshot().counter("net.reconnects") >= 1);
        a.shutdown();
        b2.shutdown();
    }

    #[test]
    fn garbage_connection_is_dropped_not_fatal() {
        let m = Arc::new(NetMetrics::new());
        let a =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        let mut s = TcpStream::connect(SocketAddr::V4(a.socket_addr())).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        drop(s);
        // The garbage costs its connection; real traffic still flows.
        let b =
            TcpTransport::bind(Ipv4Addr::LOCALHOST, 0, TcpConfig::default(), m.clone()).unwrap();
        b.send(a.local_addr(), &msg(9)).unwrap();
        assert_eq!(a.recv_timeout(Duration::from_secs(5)).unwrap().0, msg(9));
        assert!(m.snapshot().counter("net.decode_errors") >= 1);
        a.shutdown();
        b.shutdown();
    }
}
