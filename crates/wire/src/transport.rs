//! The [`Transport`] abstraction and its deterministic in-process
//! implementation, [`ChannelTransport`].
//!
//! A transport moves [`WireMsg`]s between [`Addr`]s and nothing more: the
//! protocol state machine above it ([`d2_ring::node::ProtocolNode`])
//! neither knows nor cares whether a hop is a channel push or a TCP
//! frame. Sends are *fail-fast*: a send to a dead peer returns
//! [`TransportError::PeerUnreachable`] promptly (closed channel slot, or
//! refused/backed-off connection) so the caller can evict the peer and
//! reroute instead of blocking.

use crate::codec::WireMsg;
use crate::metrics::NetMetrics;
use d2_obs::TraceCtx;
use d2_ring::messages::Addr;
use parking_lot::{Mutex, RwLock};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// A failed send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The destination is not reachable right now (dead, refused, or in
    /// reconnect backoff). Callers should treat the peer as suspect.
    PeerUnreachable(Addr),
    /// This transport has been shut down.
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerUnreachable(a) => write!(f, "peer {a} unreachable"),
            TransportError::Closed => write!(f, "transport closed"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A failed or timed-out receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// This transport has been shut down.
    Closed,
}

/// Message transport between nodes: the seam that lets the same
/// deployment run over in-process channels (deterministic tests) or TCP
/// sockets (real multi-process clusters).
///
/// Implementations must be usable from multiple threads: one thread
/// blocks in [`Transport::recv_timeout`] while others call
/// [`Transport::send`].
pub trait Transport: Send + Sync + 'static {
    /// This endpoint's own address (where peers reach it).
    fn local_addr(&self) -> Addr;

    /// Sends `msg` to `to` carrying `trace` in the envelope, failing
    /// fast when the peer is unreachable.
    fn send_traced(&self, to: Addr, msg: &WireMsg, trace: TraceCtx) -> Result<(), TransportError>;

    /// Sends `msg` untraced. Equivalent to [`Transport::send_traced`]
    /// with [`TraceCtx::NONE`].
    fn send(&self, to: Addr, msg: &WireMsg) -> Result<(), TransportError> {
        self.send_traced(to, msg, TraceCtx::NONE)
    }

    /// Receives the next message and its envelope trace context,
    /// waiting at most `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<(WireMsg, TraceCtx), RecvError>;

    /// Stops the transport: wakes blocked receivers and releases
    /// sockets/threads. Idempotent.
    fn shutdown(&self);
}

/// The shared address space of one in-process channel deployment.
///
/// Every [`ChannelTransport`] opened from the same hub gets the next
/// integer [`Addr`] and a private mailbox; sends look the destination
/// slot up in the shared table. [`ChannelHub::close`] replaces a slot
/// with a disconnected sender so that later sends to a killed node fail
/// fast, exactly like a refused TCP connection.
#[derive(Clone, Default)]
pub struct ChannelHub {
    slots: Arc<RwLock<Vec<TracedSender>>>,
    metrics: Arc<NetMetrics>,
}

/// A mailbox sender carrying each message with its trace context.
type TracedSender = mpsc::Sender<(WireMsg, TraceCtx)>;

impl ChannelHub {
    /// Creates an empty hub recording into `metrics`.
    pub fn new(metrics: Arc<NetMetrics>) -> Self {
        ChannelHub {
            slots: Arc::default(),
            metrics,
        }
    }

    /// Opens a new endpoint with the next free address.
    pub fn open(&self) -> ChannelTransport {
        let (tx, rx) = mpsc::channel();
        let mut slots = self.slots.write();
        let addr = slots.len();
        slots.push(tx);
        ChannelTransport {
            me: addr,
            hub: self.clone(),
            rx: Mutex::new(rx),
        }
    }

    /// Closes `addr`'s slot: subsequent sends to it fail fast. The
    /// endpoint itself keeps its already-queued messages.
    pub fn close(&self, addr: Addr) {
        let (tx, _) = mpsc::channel();
        if let Some(slot) = self.slots.write().get_mut(addr) {
            *slot = tx; // receiver already dropped: sends will error
        }
    }
}

/// An in-process, deterministic transport over `std::sync::mpsc`
/// channels, used by the channel deployment and by tests.
pub struct ChannelTransport {
    me: Addr,
    hub: ChannelHub,
    rx: Mutex<mpsc::Receiver<(WireMsg, TraceCtx)>>,
}

impl Transport for ChannelTransport {
    fn local_addr(&self) -> Addr {
        self.me
    }

    fn send_traced(&self, to: Addr, msg: &WireMsg, trace: TraceCtx) -> Result<(), TransportError> {
        let tx = self
            .hub
            .slots
            .read()
            .get(to)
            .cloned()
            .ok_or(TransportError::PeerUnreachable(to))?;
        tx.send((msg.clone(), trace))
            .map_err(|_| TransportError::PeerUnreachable(to))?;
        self.hub.metrics.frame_out(0);
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<(WireMsg, TraceCtx), RecvError> {
        match self.rx.lock().recv_timeout(timeout) {
            Ok(pair) => {
                self.hub.metrics.frame_in(0);
                Ok(pair)
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvError::Closed),
        }
    }

    fn shutdown(&self) {
        self.hub.close(self.me);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Request;

    fn msg(req_id: u64) -> WireMsg {
        WireMsg::Request {
            req_id,
            from: 0,
            body: Request::Status,
        }
    }

    #[test]
    fn channel_transport_delivers_in_order() {
        let hub = ChannelHub::new(Arc::new(NetMetrics::new()));
        let a = hub.open();
        let b = hub.open();
        assert_eq!(a.local_addr(), 0);
        assert_eq!(b.local_addr(), 1);
        a.send(1, &msg(1)).unwrap();
        let ctx = TraceCtx::root(0xAB).child(7);
        a.send_traced(1, &msg(2), ctx).unwrap();
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap(),
            (msg(1), TraceCtx::NONE)
        );
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)).unwrap(),
            (msg(2), ctx)
        );
        assert_eq!(
            b.recv_timeout(Duration::from_millis(10)),
            Err(RecvError::Timeout)
        );
    }

    #[test]
    fn closed_slot_fails_fast() {
        let metrics = Arc::new(NetMetrics::new());
        let hub = ChannelHub::new(metrics.clone());
        let a = hub.open();
        let b = hub.open();
        b.shutdown();
        drop(b);
        assert_eq!(a.send(1, &msg(1)), Err(TransportError::PeerUnreachable(1)));
        assert_eq!(
            a.send(7, &msg(1)),
            Err(TransportError::PeerUnreachable(7)),
            "unknown addr fails fast too"
        );
    }
}
