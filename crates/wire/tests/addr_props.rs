//! Property tests for the TCP address packing: `pack_addr` /
//! `unpack_addr` must be a bijection between `SocketAddrV4` and the
//! 48-bit `Addr` subspace it produces. The protocol leans on this hard
//! — ring messages carry packed `Addr`s as routable peer identities, so
//! a single collision would silently alias two nodes.

use d2_wire::{pack_addr, unpack_addr};
use proptest::prelude::*;
use std::net::{Ipv4Addr, SocketAddrV4};

fn arb_sock() -> impl Strategy<Value = SocketAddrV4> {
    (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| SocketAddrV4::new(Ipv4Addr::from(ip), port))
}

proptest! {
    /// Round trip: every socket address survives pack → unpack.
    #[test]
    fn pack_then_unpack_is_identity(sock in arb_sock()) {
        prop_assert_eq!(unpack_addr(pack_addr(sock)), sock);
    }

    /// Round trip the other way: every addr in the packed range
    /// survives unpack → pack, so the mapping is a true bijection on
    /// its image, not merely injective.
    #[test]
    fn unpack_then_pack_is_identity(raw in 0usize..1 << 48) {
        prop_assert_eq!(pack_addr(unpack_addr(raw)), raw);
    }

    /// Distinct sockets never collide (injectivity stated directly —
    /// this is the property that makes packed addrs usable as node
    /// identities on the ring).
    #[test]
    fn distinct_socks_never_collide(a in arb_sock(), b in arb_sock()) {
        if a != b {
            prop_assert_ne!(pack_addr(a), pack_addr(b));
        }
    }

    /// The packed form stays within 48 bits: 32 of IP, 16 of port. The
    /// headroom above bit 47 is what lets the simulators use small
    /// integers as addresses without ever colliding with a packed one.
    #[test]
    fn packed_addr_fits_48_bits(sock in arb_sock()) {
        prop_assert!(pack_addr(sock) < 1 << 48);
        prop_assert_eq!(pack_addr(sock) & 0xffff, sock.port() as usize);
    }
}
