//! Property tests for the wire codec: every message round-trips through
//! encode/decode, and adversarial byte streams (truncations, corrupted
//! headers, random garbage, oversized length prefixes) always yield a
//! `WireError` — never a panic, never a silent mis-decode.

use d2_obs::{Histogram, SpanRecord, TraceCtx};
use d2_ring::messages::{PeerInfo, RingMsg};
use d2_types::{Key, KeyRange};
use d2_wire::codec::{
    decode, decode_header, decode_traced, encode, encode_into, encode_traced, encode_traced_into,
    Request, Response, WireHistogram, WireMetrics, WireMsg, WireStatus, HEADER_LEN, MAX_PAYLOAD,
    MIN_VERSION, TRACE_LEN, VERSION,
};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = Key> {
    prop::collection::vec(any::<u8>(), 64).prop_map(|v| {
        let mut b = [0u8; 64];
        b.copy_from_slice(&v);
        Key::from_bytes(b)
    })
}

fn arb_peer() -> impl Strategy<Value = PeerInfo> {
    (arb_key(), any::<u64>()).prop_map(|(id, addr)| PeerInfo {
        id,
        addr: addr as usize,
    })
}

fn arb_peers() -> impl Strategy<Value = Vec<PeerInfo>> {
    prop::collection::vec(arb_peer(), 0..6)
}

fn arb_opt_peer() -> impl Strategy<Value = Option<PeerInfo>> {
    prop_oneof![Just(None), arb_peer().prop_map(Some)]
}

fn arb_range() -> impl Strategy<Value = KeyRange> {
    (arb_key(), arb_key()).prop_map(|(a, b)| KeyRange::new(a, b))
}

fn arb_ring_msg() -> impl Strategy<Value = RingMsg> {
    prop_oneof![
        (arb_key(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
            |(target, origin, req_id, hops)| RingMsg::FindOwner {
                target,
                origin: origin as usize,
                req_id,
                hops,
            }
        ),
        (
            (any::<u64>(), arb_peer()),
            (arb_range(), arb_peers(), any::<u32>())
        )
            .prop_map(
                |((req_id, owner), (range, successors, hops))| RingMsg::OwnerIs {
                    req_id,
                    owner,
                    range,
                    successors,
                    hops,
                }
            ),
        (arb_peer(), any::<u32>()).prop_map(|(joiner, hops)| RingMsg::Join { joiner, hops }),
        (arb_peer(), arb_opt_peer(), arb_peers()).prop_map(
            |(successor, predecessor, successors)| RingMsg::JoinAck {
                successor,
                predecessor,
                successors,
            }
        ),
        any::<u64>().prop_map(|from| RingMsg::GetNeighbors {
            from: from as usize
        }),
        (arb_peer(), arb_opt_peer(), arb_peers()).prop_map(|(me, predecessor, successors)| {
            RingMsg::Neighbors {
                me,
                predecessor,
                successors,
            }
        }),
        arb_peer().prop_map(|candidate| RingMsg::Notify { candidate }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        arb_key().prop_map(|key| Request::Lookup { key }),
        (
            arb_key(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..512)
        )
            .prop_map(|(key, fanout, stored, data)| Request::Put {
                key,
                fanout,
                stored,
                data,
            }),
        arb_key().prop_map(|key| Request::Get { key }),
        Just(Request::Status),
        Just(Request::MetricsDump),
        Just(Request::Shutdown),
    ]
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z]{1,4}\\.[a-z]{1,8}"
}

fn arb_span() -> impl Strategy<Value = SpanRecord> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()),
        (arb_name(), arb_name()),
    )
        .prop_map(
            |(
                (trace_id, span_id, parent_span_id, hop),
                (node, start_us, dur_us, ok),
                (op, detail),
            )| SpanRecord {
                trace_id,
                span_id,
                parent_span_id,
                hop,
                node,
                start_us,
                dur_us,
                ok,
                op,
                detail,
            },
        )
}

fn arb_wire_metrics() -> impl Strategy<Value = WireMetrics> {
    // Histograms are built by actually recording samples, so their
    // parts are always self-consistent (as a real node's would be).
    let arb_hist =
        (arb_name(), prop::collection::vec(any::<u64>(), 0..8)).prop_map(|(name, samples)| {
            let mut h = Histogram::new();
            for v in samples {
                h.record(v);
            }
            WireHistogram {
                name,
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets: h.buckets().to_vec(),
            }
        });
    (
        prop::collection::vec((arb_name(), any::<u64>()), 0..4),
        prop::collection::vec((arb_name(), any::<u64>()), 0..4),
        prop::collection::vec(arb_hist, 0..3),
        prop::collection::vec(arb_span(), 0..4),
    )
        .prop_map(|(counters, gauges, histograms, spans)| WireMetrics {
            counters,
            gauges,
            histograms,
            spans,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (arb_peer(), any::<u32>()).prop_map(|(owner, hops)| Response::Owner { owner, hops }),
        any::<u32>().prop_map(|replicas| Response::PutAck { replicas }),
        prop_oneof![
            Just(None),
            prop::collection::vec(any::<u8>(), 0..512).prop_map(Some)
        ]
        .prop_map(|data| Response::Block { data }),
        ((arb_peer(), arb_opt_peer()), (arb_peers(), any::<u64>())).prop_map(
            |((me, predecessor), (successors, blocks))| {
                Response::Status(WireStatus {
                    me,
                    predecessor,
                    successors,
                    blocks,
                })
            }
        ),
        arb_wire_metrics().prop_map(|m| Response::Metrics(Box::new(m))),
        Just(Response::ShutdownAck),
    ]
}

fn arb_trace() -> impl Strategy<Value = TraceCtx> {
    (any::<u64>(), any::<u64>(), any::<u8>()).prop_map(|(trace_id, span_id, hop)| TraceCtx {
        trace_id,
        span_id,
        hop,
    })
}

/// Rewrites a v2 frame as the equivalent v1 frame: drop the trace
/// block, set the version byte, fix the length prefix.
fn downgrade_to_v1(v2: &[u8]) -> Vec<u8> {
    let mut v1 = Vec::with_capacity(v2.len() - TRACE_LEN);
    v1.extend_from_slice(&v2[..HEADER_LEN]);
    v1.extend_from_slice(&v2[HEADER_LEN + TRACE_LEN..]);
    v1[2] = 1;
    let len = (v1.len() - HEADER_LEN) as u32;
    v1[4..8].copy_from_slice(&len.to_be_bytes());
    v1
}

fn arb_wire_msg() -> impl Strategy<Value = WireMsg> {
    prop_oneof![
        arb_ring_msg().prop_map(WireMsg::Ring),
        (any::<u64>(), any::<u64>(), arb_request()).prop_map(|(req_id, from, body)| {
            WireMsg::Request {
                req_id,
                from: from as usize,
                body,
            }
        }),
        (any::<u64>(), arb_response())
            .prop_map(|(req_id, body)| WireMsg::Response { req_id, body }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every message variant survives encode → decode unchanged.
    #[test]
    fn every_message_round_trips(msg in arb_wire_msg()) {
        let frame = encode(&msg);
        prop_assert_eq!(decode(&frame).unwrap(), msg);
    }

    /// The frame header is canonical: magic, version, tag, and an exact
    /// payload length.
    #[test]
    fn frames_carry_canonical_headers(msg in arb_wire_msg()) {
        let frame = encode(&msg);
        prop_assert_eq!(&frame[..2], &b"D2"[..]);
        prop_assert_eq!(frame[2], VERSION);
        prop_assert_eq!(frame[3], msg.tag());
        let len = u32::from_be_bytes([frame[4], frame[5], frame[6], frame[7]]) as usize;
        prop_assert_eq!(len, frame.len() - HEADER_LEN);
        let mut hdr = [0u8; HEADER_LEN];
        hdr.copy_from_slice(&frame[..HEADER_LEN]);
        prop_assert_eq!(decode_header(&hdr).unwrap(), (VERSION, msg.tag(), len));
    }

    /// The zero-copy path is byte-identical to the allocating one, for
    /// every message variant, traced (v2) and untraced alike — and
    /// `encode_into` appends (returning the frame length) rather than
    /// clobbering what the buffer already holds, since the TCP
    /// transport's coalescing queue packs many frames into one buffer.
    #[test]
    fn encode_into_matches_encode_bytewise(msg in arb_wire_msg(), trace in arb_trace()) {
        let mut buf = b"prefix".to_vec();
        let n = encode_into(&mut buf, &msg);
        prop_assert_eq!(&buf[..6], &b"prefix"[..]);
        prop_assert_eq!(n, buf.len() - 6);
        prop_assert_eq!(&buf[6..], &encode(&msg)[..]);

        let mut traced = Vec::new();
        let tn = encode_traced_into(&mut traced, &msg, trace);
        prop_assert_eq!(tn, traced.len());
        prop_assert_eq!(&traced[..], &encode_traced(&msg, trace)[..]);
    }

    /// The envelope trace context round-trips bit-exactly on every
    /// message variant.
    #[test]
    fn trace_context_round_trips(msg in arb_wire_msg(), trace in arb_trace()) {
        let frame = encode_traced(&msg, trace);
        let (got, got_trace) = decode_traced(&frame).unwrap();
        prop_assert_eq!(got, msg);
        prop_assert_eq!(got_trace, trace);
    }

    /// Version compatibility: a v1 frame (same body, no trace block)
    /// decodes to the same message with `TraceCtx::NONE`.
    #[test]
    fn v1_frames_decode_without_trace_block(msg in arb_wire_msg()) {
        let v1 = downgrade_to_v1(&encode(&msg));
        prop_assert_eq!(v1[2], MIN_VERSION);
        let (got, trace) = decode_traced(&v1).unwrap();
        prop_assert_eq!(got, msg);
        prop_assert_eq!(trace, TraceCtx::NONE);
    }

    /// Any strict prefix of a valid frame is an error, at every cut.
    #[test]
    fn any_truncation_is_an_error(msg in arb_wire_msg(), frac in 0.0f64..1.0) {
        let frame = encode(&msg);
        let cut = ((frame.len() as f64) * frac) as usize;
        prop_assert!(decode(&frame[..cut.min(frame.len() - 1)]).is_err());
    }

    /// Trailing bytes after a well-formed payload are an error (frames
    /// are exact, not prefixes of a stream).
    #[test]
    fn trailing_bytes_are_an_error(msg in arb_wire_msg(), extra in 1usize..16) {
        let mut frame = encode(&msg);
        // Grow the payload without fixing the length prefix.
        frame.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(decode(&frame).is_err());
    }

    /// A corrupted magic byte, or a version byte outside the accepted
    /// window, rejects the frame outright. (Version bytes *inside* the
    /// window are legal by design — see `v1_frames_decode_without_trace_block`.)
    #[test]
    fn corrupt_magic_or_version_is_an_error(msg in arb_wire_msg(), byte in any::<u8>(), pos in 0usize..3) {
        let mut frame = encode(&msg);
        prop_assume!(frame[pos] != byte);
        if pos == 2 {
            prop_assume!(!(MIN_VERSION..=VERSION).contains(&byte));
        }
        frame[pos] = byte;
        prop_assert!(decode(&frame).is_err());
    }

    /// An unknown tag byte is rejected even with a plausible header.
    #[test]
    fn unknown_tags_are_an_error(msg in arb_wire_msg(), tag in any::<u8>()) {
        let valid = matches!(tag, 0x01..=0x07 | 0x10..=0x15 | 0x20..=0x25);
        prop_assume!(!valid);
        let mut frame = encode(&msg);
        frame[3] = tag;
        prop_assert!(decode(&frame).is_err());
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
        if bytes.len() >= HEADER_LEN {
            let mut hdr = [0u8; HEADER_LEN];
            hdr.copy_from_slice(&bytes[..HEADER_LEN]);
            let _ = decode_header(&hdr);
        }
    }

    /// A length prefix beyond [`MAX_PAYLOAD`] is rejected at the header,
    /// before any allocation could balloon.
    #[test]
    fn oversized_length_prefix_is_an_error(extra in 1u32..1 << 30) {
        let len = (MAX_PAYLOAD as u32).saturating_add(extra);
        let mut hdr = [0u8; HEADER_LEN];
        hdr[..2].copy_from_slice(b"D2");
        hdr[2] = VERSION;
        hdr[3] = 0x10;
        hdr[4..].copy_from_slice(&len.to_be_bytes());
        prop_assert!(decode_header(&hdr).is_err());
    }
}
