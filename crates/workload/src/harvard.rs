//! Harvard-like NFS workload generator (substitute for the EECS trace of
//! Ellard et al., FAST 2003 — see DESIGN.md §3).
//!
//! What the D2 evaluation depends on, and what this generator reproduces:
//!
//! - **Name-space locality of tasks**: each user works in a small set of
//!   home directories and walks between nearby directories, so the blocks
//!   a task touches are close in preorder path order.
//! - **Skewed file sizes**: Pareto-distributed, spanning four-plus orders
//!   of magnitude between mean and max (the traditional-file DHT's load
//!   balance suffers exactly because of this, Section 10).
//! - **Daily churn**: each simulated day writes 10–20% of the stored
//!   bytes and removes about as much (Table 3, Harvard rows).
//! - **Diurnal activity**: accesses concentrate in the 9 AM–6 PM window
//!   the paper samples its performance segments from.

use crate::namespace::{Access, FileId, FileOp, Namespace};
use d2_sim::SimTime;
use d2_types::BLOCK_SIZE;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunables for the Harvard-like generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HarvardConfig {
    /// Number of users (the paper's performance runs replay 83).
    pub users: usize,
    /// Trace length in days.
    pub days: f64,
    /// Target initial volume size in bytes.
    pub initial_bytes: u64,
    /// Mean read operations per user per active hour.
    pub reads_per_user_hour: f64,
    /// Daily written bytes as a fraction of stored bytes (Table 3:
    /// 0.10–0.20).
    pub daily_write_ratio: f64,
    /// Daily removed bytes as a fraction of stored bytes (Table 3:
    /// 0.10–0.22).
    pub daily_remove_ratio: f64,
    /// Directories per user home.
    pub dirs_per_user: usize,
    /// Mean files per directory.
    pub files_per_dir: f64,
    /// Probability a read burst jumps to a different directory.
    pub dir_jump_prob: f64,
    /// Probability an access goes to the shared subtree instead of the
    /// user's home.
    pub shared_prob: f64,
}

impl Default for HarvardConfig {
    fn default() -> Self {
        HarvardConfig {
            users: 40,
            days: 7.0,
            initial_bytes: 2 << 30, // 2 GiB scaled-down volume
            reads_per_user_hour: 120.0,
            daily_write_ratio: 0.15,
            daily_remove_ratio: 0.14,
            dirs_per_user: 12,
            files_per_dir: 14.0,
            dir_jump_prob: 0.25,
            shared_prob: 0.1,
        }
    }
}

/// A generated Harvard-like trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HarvardTrace {
    /// The (evolving) name space.
    pub namespace: Namespace,
    /// Time-ordered accesses.
    pub accesses: Vec<Access>,
    /// Configuration used.
    pub config: HarvardConfig,
}

/// Pareto file size: minimum 4 KB, shape chosen so sizes span ~4 orders
/// of magnitude (median ≈ 8 KB, mean ≈ 60 KB, max capped at 512 MB —
/// the Harvard trace's mean-to-max gap that wrecks the traditional-file
/// DHT's balance in Section 10).
pub fn pareto_size<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    let alpha = 1.15;
    let min = 4096.0;
    let u: f64 = rng.random::<f64>().max(1e-12);
    let size = min / u.powf(1.0 / alpha);
    size.min(512.0 * 1024.0 * 1024.0) as u64
}

/// Diurnal activity multiplier: near 1.0 during 9 AM–6 PM, low at night.
pub fn diurnal(hour_of_day: f64) -> f64 {
    if (9.0..18.0).contains(&hour_of_day) {
        1.0
    } else if (7.0..9.0).contains(&hour_of_day) || (18.0..22.0).contains(&hour_of_day) {
        0.35
    } else {
        0.06
    }
}

impl HarvardTrace {
    /// Generates a trace.
    pub fn generate<R: Rng + ?Sized>(cfg: &HarvardConfig, rng: &mut R) -> HarvardTrace {
        let mut ns = Namespace::new("harvard");
        let mut user_files: Vec<Vec<FileId>> = vec![Vec::new(); cfg.users];
        let mut user_dirs: Vec<Vec<usize>> = vec![Vec::new(); cfg.users];
        let mut shared_files: Vec<FileId> = Vec::new();

        // ---- initial population -------------------------------------------------
        let per_user = cfg.initial_bytes / (cfg.users as u64 + 1);
        for u in 0..cfg.users {
            for d in 0..cfg.dirs_per_user {
                let depth2 = d % 3;
                let dir_path = if depth2 == 0 {
                    format!("/home/u{u}/d{d}")
                } else {
                    format!("/home/u{u}/proj{}/d{d}", d % 4)
                };
                user_dirs[u].push(ns.ensure_dir(&dir_path));
            }
            // Fill the user's directories until the byte budget is met,
            // with per-directory file counts jittered around the mean.
            let mut bytes = 0u64;
            let mut fno = 0usize;
            let mut dir_order: Vec<usize> = (0..user_dirs[u].len()).collect();
            while bytes < per_user && fno < 100_000 {
                let di = dir_order[fno % dir_order.len()];
                // Occasionally reshuffle emphasis so directories differ in
                // file count.
                if fno.is_multiple_of(7) {
                    let a = rng.random_range(0..dir_order.len());
                    let b = rng.random_range(0..dir_order.len());
                    dir_order.swap(a, b);
                }
                let dir = user_dirs[u][di];
                let size = pareto_size(rng);
                let id = ns.create_file(dir, &format!("f{fno}.dat"), size, SimTime::ZERO);
                user_files[u].push(id);
                bytes += size;
                fno += 1;
            }
            let _ = cfg.files_per_dir;
        }
        // Shared subtree (binaries / libraries).
        let shared_dir = ns.ensure_dir("/usr/share");
        for f in 0..(4 * cfg.files_per_dir as usize) {
            let size = pareto_size(rng);
            shared_files.push(ns.create_file(
                shared_dir,
                &format!("lib{f}.so"),
                size,
                SimTime::ZERO,
            ));
        }

        // ---- access stream ------------------------------------------------------
        let mut accesses: Vec<Access> = Vec::new();
        let horizon = cfg.days * 86_400.0;

        // Reads: per-user bursty process with directory locality.
        for u in 0..cfg.users {
            let mut t = rng.random::<f64>() * 600.0;
            let mut locus = user_dirs[u][rng.random_range(0..user_dirs[u].len())];
            while t < horizon {
                let hour = (t / 3600.0) % 24.0;
                let rate = cfg.reads_per_user_hour * diurnal(hour) / 3600.0;
                if rng.random::<f64>() >= rate.min(1.0) * 12.0 {
                    // No burst in this 12 s slot.
                    t += 12.0;
                    continue;
                }
                // A burst: 2–30 accesses with sub-second to few-second gaps.
                if rng.random::<f64>() < cfg.dir_jump_prob {
                    locus = user_dirs[u][rng.random_range(0..user_dirs[u].len())];
                }
                let burst_len = 2 + rng.random_range(0..29);
                for _ in 0..burst_len {
                    let shared = rng.random::<f64>() < cfg.shared_prob;
                    let candidates: Vec<FileId> = if shared {
                        shared_files.clone()
                    } else {
                        user_files[u]
                            .iter()
                            .copied()
                            .filter(|id| ns.file(*id).dir() == locus)
                            .collect()
                    };
                    let pool = if candidates.is_empty() {
                        &user_files[u]
                    } else {
                        &candidates
                    };
                    if pool.is_empty() {
                        break;
                    }
                    let file = pool[rng.random_range(0..pool.len())];
                    if !ns.file(file).alive_at(SimTime::from_secs_f64(t)) {
                        continue;
                    }
                    let total = ns.file(file).data_blocks();
                    // Mostly whole-file sequential reads; sometimes partial.
                    let (first, n) = if total <= 8 || rng.random::<f64>() < 0.7 {
                        (1u64, total.min(u32::MAX as u64) as u32)
                    } else {
                        let first = 1 + rng.random_range(0..total);
                        let n = (1 + rng.random_range(0..8)).min((total - first + 1) as u32);
                        (first, n)
                    };
                    accesses.push(Access {
                        at: SimTime::from_secs_f64(t),
                        user: u as u32,
                        file,
                        op: FileOp::Read,
                        first_block: first,
                        nblocks: n,
                    });
                    // Intra-burst gaps stay below the 1 s think-time
                    // threshold so a burst forms one access group
                    // (Section 9.1).
                    t += 0.05 + rng.random::<f64>() * 0.7;
                }
                // Think time to the next burst.
                t += 20.0 + rng.random::<f64>() * 400.0;
            }
        }

        // Writes and removals: per-day byte budgets (Table 3 calibration).
        let mut live_bytes = ns.bytes_at(SimTime::ZERO);
        for day in 0..cfg.days.ceil() as usize {
            let day_start = day as f64 * 86_400.0;
            let mut write_budget = (cfg.daily_write_ratio * live_bytes as f64) as i64;
            let mut remove_budget = (cfg.daily_remove_ratio * live_bytes as f64) as i64;
            let mut write_attempts = 0;
            while write_budget > 0 {
                write_attempts += 1;
                if write_attempts > 200_000 {
                    break;
                }
                let u = rng.random_range(0..cfg.users);
                let t = day_start + 9.0 * 3600.0 + rng.random::<f64>() * 9.0 * 3600.0;
                if t >= horizon {
                    break;
                }
                let at = SimTime::from_secs_f64(t);
                if rng.random::<f64>() < 0.5 && !user_files[u].is_empty() {
                    // Overwrite an existing (alive) file. Skip files that
                    // would single-handedly blow through the remaining
                    // budget (a Pareto-tail giant would otherwise make one
                    // op the whole day's churn at small scales).
                    let file = user_files[u][rng.random_range(0..user_files[u].len())];
                    if !ns.file(file).alive_at(at) {
                        continue;
                    }
                    let size = ns.file(file).size;
                    if size as i64 > write_budget.saturating_mul(4) {
                        continue;
                    }
                    accesses.push(Access {
                        at,
                        user: u as u32,
                        file,
                        op: FileOp::Write,
                        first_block: 1,
                        nblocks: ns.file(file).data_blocks().min(u32::MAX as u64) as u32,
                    });
                    write_budget -= size as i64;
                } else {
                    // Create a new file, capped near the remaining budget.
                    let dir = user_dirs[u][rng.random_range(0..user_dirs[u].len())];
                    let size = pareto_size(rng).min((write_budget as u64).max(64 * 1024));
                    let name = format!("new{}_{}", day, accesses.len());
                    let file = ns.create_file(dir, &name, size, at);
                    user_files[u].push(file);
                    accesses.push(Access {
                        at,
                        user: u as u32,
                        file,
                        op: FileOp::Create,
                        first_block: 1,
                        nblocks: ns.file(file).data_blocks().min(u32::MAX as u64) as u32,
                    });
                    write_budget -= size as i64;
                    live_bytes += size;
                }
            }
            let mut attempts = 0;
            while remove_budget > 0 {
                attempts += 1;
                if attempts > 200_000 {
                    break; // nothing removable fits the remaining budget
                }
                let u = rng.random_range(0..cfg.users);
                if user_files[u].is_empty() {
                    continue;
                }
                let t = day_start + 9.0 * 3600.0 + rng.random::<f64>() * 9.0 * 3600.0;
                if t >= horizon {
                    break;
                }
                let at = SimTime::from_secs_f64(t);
                let pos = rng.random_range(0..user_files[u].len());
                let file = user_files[u][pos];
                if !ns.file(file).alive_at(at) || ns.file(file).created_at >= at {
                    continue;
                }
                let size = ns.file(file).size;
                if size as i64 > remove_budget.saturating_mul(4) {
                    continue;
                }
                ns.delete_file(file, at);
                user_files[u].swap_remove(pos);
                accesses.push(Access {
                    at,
                    user: u as u32,
                    file,
                    op: FileOp::Delete,
                    first_block: 0,
                    nblocks: 0,
                });
                remove_budget -= size as i64;
                live_bytes = live_bytes.saturating_sub(size);
            }
        }

        // Reads are generated before the day-budget write/delete pass, so a
        // read may postdate a deletion decided later; drop those (the real
        // trace never accesses dead files).
        accesses.retain(|a| match a.op {
            FileOp::Read | FileOp::Write => ns.file(a.file).alive_at(a.at),
            FileOp::Create | FileOp::Delete => true,
        });
        accesses.sort_by_key(|a| (a.at, a.user));
        HarvardTrace {
            namespace: ns,
            accesses,
            config: *cfg,
        }
    }

    /// Total bytes read by the trace.
    pub fn read_bytes(&self) -> u64 {
        self.accesses
            .iter()
            .filter(|a| a.op == FileOp::Read)
            .map(|a| a.nblocks as u64 * BLOCK_SIZE as u64)
            .sum()
    }

    /// Written bytes per day index (creates + overwrites).
    pub fn write_bytes_by_day(&self) -> Vec<u64> {
        self.bytes_by_day(|op| matches!(op, FileOp::Write | FileOp::Create))
    }

    /// Removed bytes per day index.
    pub fn removed_bytes_by_day(&self) -> Vec<u64> {
        let days = self.config.days.ceil() as usize;
        let mut out = vec![0u64; days];
        for a in &self.accesses {
            if a.op == FileOp::Delete {
                let day = (a.at.as_secs_f64() / 86_400.0) as usize;
                if day < days {
                    out[day] += self.namespace.file(a.file).size;
                }
            }
        }
        out
    }

    fn bytes_by_day(&self, pred: impl Fn(FileOp) -> bool) -> Vec<u64> {
        let days = self.config.days.ceil() as usize;
        let mut out = vec![0u64; days];
        for a in &self.accesses {
            if pred(a.op) {
                let day = (a.at.as_secs_f64() / 86_400.0) as usize;
                if day < days {
                    out[day] += self.namespace.file(a.file).size;
                }
            }
        }
        out
    }

    /// Stored bytes at the start of each day (the `T_i` of Table 3).
    pub fn stored_bytes_by_day(&self) -> Vec<u64> {
        let days = self.config.days.ceil() as usize;
        (0..days)
            .map(|d| {
                self.namespace
                    .bytes_at(SimTime::from_secs_f64(d as f64 * 86_400.0))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> HarvardConfig {
        HarvardConfig {
            users: 8,
            days: 2.0,
            initial_bytes: 64 << 20,
            reads_per_user_hour: 60.0,
            ..HarvardConfig::default()
        }
    }

    #[test]
    fn trace_is_time_ordered() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = HarvardTrace::generate(&small(), &mut rng);
        assert!(!t.accesses.is_empty());
        for w in t.accesses.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn accesses_reference_live_files() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = HarvardTrace::generate(&small(), &mut rng);
        for a in &t.accesses {
            if a.op == FileOp::Read || a.op == FileOp::Write {
                assert!(
                    t.namespace.file(a.file).alive_at(a.at),
                    "access to dead file {:?}",
                    a.file
                );
            }
        }
    }

    #[test]
    fn daily_churn_matches_table3_band() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = HarvardConfig {
            days: 4.0,
            ..small()
        };
        let t = HarvardTrace::generate(&cfg, &mut rng);
        let writes = t.write_bytes_by_day();
        let stored = t.stored_bytes_by_day();
        for d in 0..3 {
            let ratio = writes[d] as f64 / stored[d].max(1) as f64;
            assert!(
                (0.05..0.45).contains(&ratio),
                "day {d} write ratio {ratio} outside Table 3 band"
            );
        }
    }

    #[test]
    fn file_sizes_span_orders_of_magnitude() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let sizes: Vec<u64> = (0..20_000).map(|_| pareto_size(&mut rng)).collect();
        let max = *sizes.iter().max().unwrap() as f64;
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!(max / mean > 1e3, "max/mean = {}", max / mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = HarvardTrace::generate(&small(), &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = HarvardTrace::generate(&small(), &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a.accesses.len(), b.accesses.len());
        assert_eq!(a.namespace.len(), b.namespace.len());
    }

    #[test]
    fn diurnal_shape() {
        assert_eq!(diurnal(12.0), 1.0);
        assert!(diurnal(3.0) < 0.1);
        assert!(diurnal(20.0) < diurnal(12.0));
    }

    #[test]
    fn reads_dominate_writes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let t = HarvardTrace::generate(&small(), &mut rng);
        let reads = t.accesses.iter().filter(|a| a.op == FileOp::Read).count();
        let writes = t.accesses.iter().filter(|a| a.op != FileOp::Read).count();
        assert!(reads > writes, "reads {reads} writes {writes}");
    }
}
