//! HP-like block-level disk trace generator (substitute for the HP Labs
//! Cello trace — see DESIGN.md §3).
//!
//! The real trace records raw disk-block accesses per application (pid),
//! with no file boundaries. What Figure 3 extracts from it is *block
//! number locality*: local file systems place related data contiguously,
//! so applications access sequential runs of block numbers interleaved
//! with seeks. The generator reproduces exactly that structure: each
//! application owns a few regions of the block space and performs
//! sequential runs with occasional jumps.

use d2_sim::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunables for the HP-like generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HpConfig {
    /// Number of applications (pids).
    pub apps: usize,
    /// Total disk size in blocks.
    pub disk_blocks: u64,
    /// Trace length in days.
    pub days: f64,
    /// Mean accesses per app per active hour.
    pub accesses_per_app_hour: f64,
    /// Regions of the disk each app works in.
    pub regions_per_app: usize,
    /// Mean sequential run length.
    pub mean_run: f64,
}

impl Default for HpConfig {
    fn default() -> Self {
        HpConfig {
            apps: 24,
            disk_blocks: 5_000_000, // ~40 GB of 8 KB blocks
            days: 7.0,
            accesses_per_app_hour: 2_000.0,
            regions_per_app: 6,
            mean_run: 24.0,
        }
    }
}

/// One block access.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BlockAccess {
    /// When.
    pub at: SimTime,
    /// Application (pid).
    pub app: u32,
    /// Disk block number — the "name" whose ordering Figure 3's *ordered*
    /// scenario preserves.
    pub block_no: u64,
}

/// A generated HP-like trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HpTrace {
    /// Time-ordered accesses.
    pub accesses: Vec<BlockAccess>,
    /// Configuration used.
    pub config: HpConfig,
}

impl HpTrace {
    /// Generates a trace.
    pub fn generate<R: Rng + ?Sized>(cfg: &HpConfig, rng: &mut R) -> HpTrace {
        let mut accesses = Vec::new();
        let horizon = cfg.days * 86_400.0;
        for app in 0..cfg.apps {
            // Each app's working regions (file-system allocation groups).
            let regions: Vec<u64> = (0..cfg.regions_per_app)
                .map(|_| rng.random_range(0..cfg.disk_blocks))
                .collect();
            let mut t = rng.random::<f64>() * 30.0;
            let mut pos = regions[0];
            while t < horizon {
                let hour = (t / 3600.0) % 24.0;
                let rate = cfg.accesses_per_app_hour * crate::harvard::diurnal(hour) / 3600.0;
                if rate <= 0.0 {
                    t += 60.0;
                    continue;
                }
                // A sequential run.
                if rng.random::<f64>() < 0.2 {
                    // Seek to another region (plus small offset).
                    let r = regions[rng.random_range(0..regions.len())];
                    pos = (r + rng.random_range(0..4096)) % cfg.disk_blocks;
                }
                let run = 1 + (-(cfg.mean_run) * rng.random::<f64>().max(1e-12).ln()) as u64;
                for _ in 0..run {
                    accesses.push(BlockAccess {
                        at: SimTime::from_secs_f64(t),
                        app: app as u32,
                        block_no: pos,
                    });
                    pos = (pos + 1) % cfg.disk_blocks;
                    t += 0.002 + rng.random::<f64>() * 0.05;
                }
                // Inter-run gap from the target rate.
                t += -(1.0 / rate) * rng.random::<f64>().max(1e-12).ln();
            }
        }
        accesses.sort_by_key(|a| (a.at, a.app));
        HpTrace {
            accesses,
            config: *cfg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> HpConfig {
        HpConfig {
            apps: 4,
            days: 0.5,
            accesses_per_app_hour: 500.0,
            ..HpConfig::default()
        }
    }

    #[test]
    fn ordered_and_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = HpTrace::generate(&small(), &mut rng);
        assert!(!t.accesses.is_empty());
        for w in t.accesses.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for a in &t.accesses {
            assert!(a.block_no < t.config.disk_blocks);
        }
    }

    #[test]
    fn accesses_show_sequential_locality() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = HpTrace::generate(&small(), &mut rng);
        // Per app, a large fraction of consecutive accesses are +1 steps.
        for app in 0..t.config.apps as u32 {
            let blocks: Vec<u64> = t
                .accesses
                .iter()
                .filter(|a| a.app == app)
                .map(|a| a.block_no)
                .collect();
            if blocks.len() < 100 {
                continue;
            }
            let seq = blocks.windows(2).filter(|w| w[1] == w[0] + 1).count();
            let frac = seq as f64 / (blocks.len() - 1) as f64;
            assert!(frac > 0.4, "app {app} sequential fraction {frac}");
        }
    }

    #[test]
    fn apps_use_disjoint_working_sets_mostly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = HpTrace::generate(&small(), &mut rng);
        // Each app touches a tiny fraction of the disk.
        for app in 0..t.config.apps as u32 {
            let mut blocks: Vec<u64> = t
                .accesses
                .iter()
                .filter(|a| a.app == app)
                .map(|a| a.block_no)
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            assert!(
                (blocks.len() as u64) < t.config.disk_blocks / 10,
                "app {app} touches too much of the disk"
            );
        }
    }
}
