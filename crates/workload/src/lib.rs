//! Synthetic workloads standing in for the paper's traces (Table 1).
//!
//! The paper analyzes three real traces we do not have:
//!
//! | Paper trace | Substitute | What is preserved |
//! |---|---|---|
//! | **Harvard** (NFS, research + email, 83 GB) | [`harvard`] | name-space locality of per-user accesses, working-set sizes, Pareto file sizes spanning ≥4 orders of magnitude, daily write/remove byte ratios of 0.10–0.20 (Table 3) |
//! | **HP** (block-level disk trace) | [`hp`] | sequential runs over block numbers with per-application locality |
//! | **Web / IRCache** (NLANR proxies) | [`web`] | Zipf URL popularity over a domain/path hierarchy, reversed-domain naming, the high-churn Webcache insert/evict behaviour |
//!
//! plus the task/access-group segmentation the evaluation applies to them
//! ([`tasks`], Sections 8.1 and 9.1).
//!
//! Every generator is deterministic given its RNG, so experiments are
//! exactly reproducible.

pub mod harvard;
pub mod hp;
pub mod namespace;
pub mod tasks;
pub mod web;

pub use harvard::{HarvardConfig, HarvardTrace};
pub use hp::{HpConfig, HpTrace};
pub use namespace::{Access, FileId, FileOp, Namespace};
pub use tasks::{split_access_groups, split_tasks, Task};
pub use web::{WebConfig, WebTrace};
