//! The synthetic volume name space shared by workload generators and
//! experiments.
//!
//! A [`Namespace`] tracks every file that ever existed in a generated
//! volume — its full path, its Figure 4 slot encoding, its size, and its
//! lifetime — so that any access in a trace can be expanded into the
//! block names (and hence the DHT keys under any encoding) it touches.

use d2_sim::SimTime;
use d2_types::{BlockKind, BlockName, PathSlots, VolumeId, BLOCK_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a file in its [`Namespace`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct FileId(pub u32);

/// What an access does to a file.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FileOp {
    /// Read bytes from an existing file.
    Read,
    /// Overwrite bytes of an existing file (new block versions).
    Write,
    /// Create the file (first write).
    Create,
    /// Delete the file.
    Delete,
}

/// One trace record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Access {
    /// When the access happens.
    pub at: SimTime,
    /// Which user (or application) performs it.
    pub user: u32,
    /// Which file it touches.
    pub file: FileId,
    /// The operation.
    pub op: FileOp,
    /// First file block touched (0 = whole-file metadata; data blocks are
    /// 1-based as in the key encoding).
    pub first_block: u64,
    /// Number of data blocks touched.
    pub nblocks: u32,
}

impl Access {
    /// Bytes moved by this access (approximating each touched block as
    /// full, except tiny files).
    pub fn bytes(&self, ns: &Namespace) -> u64 {
        let size = ns.file(self.file).size;
        (self.nblocks as u64 * BLOCK_SIZE as u64).min(size.max(1))
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct DirRec {
    path: String,
    slots: PathSlots,
    next_slot: u16,
}

/// Metadata for one (possibly deleted) file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FileRec {
    /// Full path.
    pub path: String,
    /// Figure 4 slot encoding of the path.
    pub slots: PathSlots,
    /// Size in bytes.
    pub size: u64,
    /// Creation time (ZERO for initial files).
    pub created_at: SimTime,
    /// Deletion time, if deleted.
    pub deleted_at: Option<SimTime>,
    /// Directory the file lives in.
    pub(crate) dir: usize,
}

impl FileRec {
    /// Index of the directory this file lives in.
    pub fn dir(&self) -> usize {
        self.dir
    }

    /// Number of data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.size.div_ceil(BLOCK_SIZE as u64).max(1)
    }

    /// Data blocks + the inode metadata block.
    pub fn total_blocks(&self) -> u64 {
        self.data_blocks() + 1
    }

    /// Whether the file is alive at `t`.
    pub fn alive_at(&self, t: SimTime) -> bool {
        self.created_at <= t && self.deleted_at.map(|d| t < d).unwrap_or(true)
    }
}

/// The evolving name space of one volume.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Namespace {
    volume: VolumeId,
    dirs: Vec<DirRec>,
    dir_by_path: HashMap<String, usize>,
    files: Vec<FileRec>,
}

impl Namespace {
    /// Creates an empty name space for `volume_name`.
    pub fn new(volume_name: &str) -> Self {
        let root = DirRec {
            path: String::new(),
            slots: PathSlots::root(),
            next_slot: 1,
        };
        let mut dir_by_path = HashMap::new();
        dir_by_path.insert(String::new(), 0);
        Namespace {
            volume: VolumeId::from_name(volume_name),
            dirs: vec![root],
            dir_by_path,
            files: Vec::new(),
        }
    }

    /// The volume id.
    pub fn volume(&self) -> VolumeId {
        self.volume
    }

    /// Ensures `path` (e.g. `/home/u3/src`) exists as a directory chain;
    /// returns its index.
    pub fn ensure_dir(&mut self, path: &str) -> usize {
        let mut cur = 0usize;
        let mut cur_path = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            cur_path.push('/');
            cur_path.push_str(comp);
            cur = match self.dir_by_path.get(&cur_path) {
                Some(&d) => d,
                None => {
                    let slot = self.dirs[cur].next_slot;
                    self.dirs[cur].next_slot = self.dirs[cur].next_slot.wrapping_add(1).max(1);
                    let rec = DirRec {
                        path: cur_path.clone(),
                        slots: self.dirs[cur].slots.child(slot, comp),
                        next_slot: 1,
                    };
                    let idx = self.dirs.len();
                    self.dirs.push(rec);
                    self.dir_by_path.insert(cur_path.clone(), idx);
                    idx
                }
            };
        }
        cur
    }

    /// Creates a file `name` in directory `dir` with the given size;
    /// returns its id.
    pub fn create_file(&mut self, dir: usize, name: &str, size: u64, at: SimTime) -> FileId {
        let slot = self.dirs[dir].next_slot;
        self.dirs[dir].next_slot = self.dirs[dir].next_slot.wrapping_add(1).max(1);
        let rec = FileRec {
            path: format!("{}/{}", self.dirs[dir].path, name),
            slots: self.dirs[dir].slots.child(slot, name),
            size,
            created_at: at,
            deleted_at: None,
            dir,
        };
        let id = FileId(self.files.len() as u32);
        self.files.push(rec);
        id
    }

    /// Marks a file deleted at `at`.
    pub fn delete_file(&mut self, id: FileId, at: SimTime) {
        self.files[id.0 as usize].deleted_at = Some(at);
    }

    /// Resizes a file (overwrite may grow it).
    pub fn resize_file(&mut self, id: FileId, size: u64) {
        self.files[id.0 as usize].size = size;
    }

    /// Metadata of `id`.
    pub fn file(&self, id: FileId) -> &FileRec {
        &self.files[id.0 as usize]
    }

    /// Number of files ever created.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no file was ever created.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Ids of files alive at `t`.
    pub fn live_at(&self, t: SimTime) -> Vec<FileId> {
        (0..self.files.len() as u32)
            .map(FileId)
            .filter(|id| self.file(*id).alive_at(t))
            .collect()
    }

    /// Total bytes alive at `t`.
    pub fn bytes_at(&self, t: SimTime) -> u64 {
        self.files
            .iter()
            .filter(|f| f.alive_at(t))
            .map(|f| f.size)
            .sum()
    }

    /// Total blocks (data + inode) alive at `t`.
    pub fn blocks_at(&self, t: SimTime) -> u64 {
        self.files
            .iter()
            .filter(|f| f.alive_at(t))
            .map(|f| f.total_blocks())
            .sum()
    }

    /// The block name for block `block_no` of file `id` (0 = inode).
    pub fn block_name(&self, id: FileId, block_no: u64) -> BlockName {
        let f = self.file(id);
        BlockName {
            volume: self.volume,
            slots: f.slots,
            path: f.path.clone(),
            block_no,
            version: 0,
            kind: if block_no == 0 {
                BlockKind::Inode
            } else {
                BlockKind::Data
            },
        }
    }

    /// Expands an access into the block names it touches: the inode plus
    /// the accessed data blocks.
    pub fn blocks_of_access(&self, a: &Access) -> Vec<BlockName> {
        let f = self.file(a.file);
        let mut out = Vec::with_capacity(a.nblocks as usize + 1);
        out.push(self.block_name(a.file, 0));
        let last = f.data_blocks();
        let first = a.first_block.max(1);
        for b in first..(first + a.nblocks as u64).min(last + 1) {
            out.push(self.block_name(a.file, b));
        }
        out
    }

    /// Iterates all file records.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &FileRec)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_dir_idempotent() {
        let mut ns = Namespace::new("v");
        let a = ns.ensure_dir("/home/u1");
        let b = ns.ensure_dir("/home/u1");
        assert_eq!(a, b);
        let c = ns.ensure_dir("/home/u2");
        assert_ne!(a, c);
    }

    #[test]
    fn files_in_one_dir_share_slot_prefix() {
        let mut ns = Namespace::new("v");
        let d = ns.ensure_dir("/home/u1");
        let f1 = ns.create_file(d, "a.txt", 100, SimTime::ZERO);
        let f2 = ns.create_file(d, "b.txt", 100, SimTime::ZERO);
        let s1 = ns.file(f1).slots;
        let s2 = ns.file(f2).slots;
        assert_eq!(s1.slots()[..2], s2.slots()[..2]);
        assert_ne!(s1.slots()[2], s2.slots()[2]);
    }

    #[test]
    fn lifetimes_respected() {
        let mut ns = Namespace::new("v");
        let d = ns.ensure_dir("/d");
        let f = ns.create_file(d, "f", 10_000, SimTime::from_secs(100));
        assert!(!ns.file(f).alive_at(SimTime::from_secs(99)));
        assert!(ns.file(f).alive_at(SimTime::from_secs(100)));
        ns.delete_file(f, SimTime::from_secs(200));
        assert!(ns.file(f).alive_at(SimTime::from_secs(199)));
        assert!(!ns.file(f).alive_at(SimTime::from_secs(200)));
        assert_eq!(ns.live_at(SimTime::from_secs(150)), vec![f]);
        assert!(ns.live_at(SimTime::from_secs(250)).is_empty());
    }

    #[test]
    fn block_math() {
        let mut ns = Namespace::new("v");
        let d = ns.ensure_dir("/d");
        let f = ns.create_file(d, "f", 20_000, SimTime::ZERO);
        assert_eq!(ns.file(f).data_blocks(), 3);
        assert_eq!(ns.file(f).total_blocks(), 4);
        assert_eq!(ns.bytes_at(SimTime::ZERO), 20_000);
        assert_eq!(ns.blocks_at(SimTime::ZERO), 4);
        // Empty file still occupies one block.
        let e = ns.create_file(d, "empty", 0, SimTime::ZERO);
        assert_eq!(ns.file(e).data_blocks(), 1);
    }

    #[test]
    fn access_expansion_touches_inode_and_data() {
        let mut ns = Namespace::new("v");
        let d = ns.ensure_dir("/d");
        let f = ns.create_file(d, "f", 40_000, SimTime::ZERO); // 5 data blocks
        let a = Access {
            at: SimTime::ZERO,
            user: 0,
            file: f,
            op: FileOp::Read,
            first_block: 2,
            nblocks: 3,
        };
        let blocks = ns.blocks_of_access(&a);
        assert_eq!(blocks.len(), 4); // inode + 3 data
        assert_eq!(blocks[0].block_no, 0);
        assert_eq!(blocks[1].block_no, 2);
        assert_eq!(blocks[3].block_no, 4);
        // Reading past EOF clamps.
        let a2 = Access {
            at: SimTime::ZERO,
            user: 0,
            file: f,
            op: FileOp::Read,
            first_block: 4,
            nblocks: 10,
        };
        let blocks2 = ns.blocks_of_access(&a2);
        assert_eq!(blocks2.len(), 1 + 2); // inode + blocks 4, 5
    }

    #[test]
    fn block_names_have_d2_locality() {
        let mut ns = Namespace::new("v");
        let d = ns.ensure_dir("/a/b");
        let f = ns.create_file(d, "f", 30_000, SimTime::ZERO);
        let k1 = ns.block_name(f, 1).d2_key();
        let k2 = ns.block_name(f, 2).d2_key();
        assert!(k1 < k2);
        assert_eq!(k1.as_bytes()[..44], k2.as_bytes()[..44]);
    }
}
