//! Task and access-group segmentation (paper Sections 8.1 and 9.1).
//!
//! The Harvard trace carries no explicit task boundaries, so the paper
//! approximates:
//!
//! - a **task** is a maximal per-user run of accesses in which consecutive
//!   gaps are below an inter-arrival threshold `inter` (1 s … 1 min),
//!   capped at 5 minutes — the availability unit: a task *fails* if any
//!   block it needs is unavailable;
//! - an **access group** is a per-user run separated by *think times*
//!   (gaps > 1 s) — the latency unit: its completion time is what the
//!   user perceives.

use crate::namespace::Access;
use d2_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A contiguous per-user group of trace accesses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Task {
    /// The user whose accesses these are.
    pub user: u32,
    /// Time of the first access.
    pub start: SimTime,
    /// Indices into the source access slice, in time order.
    pub indices: Vec<usize>,
}

impl Task {
    /// Number of accesses in the group.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the group is empty (never produced by the splitters).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// Splits `accesses` (time-ordered) into tasks: per-user runs with
/// consecutive gaps `< inter`, total duration capped at `max_duration`.
pub fn split_tasks(accesses: &[Access], inter: SimTime, max_duration: SimTime) -> Vec<Task> {
    split(accesses, inter, Some(max_duration))
}

/// Splits into access groups: per-user runs separated by think times
/// (gaps `>= think`), with no duration cap.
pub fn split_access_groups(accesses: &[Access], think: SimTime) -> Vec<Task> {
    split(accesses, think, None)
}

fn split(accesses: &[Access], gap: SimTime, cap: Option<SimTime>) -> Vec<Task> {
    let mut open: HashMap<u32, Task> = HashMap::new();
    let mut done: Vec<Task> = Vec::new();
    let mut last_at: HashMap<u32, SimTime> = HashMap::new();

    for (i, a) in accesses.iter().enumerate() {
        let user = a.user;
        let continue_run = match (open.get(&user), last_at.get(&user)) {
            (Some(task), Some(&last)) => {
                let within_gap = a.at.saturating_sub(last) < gap;
                let within_cap = cap
                    .map(|c| a.at.saturating_sub(task.start) <= c)
                    .unwrap_or(true);
                within_gap && within_cap
            }
            _ => false,
        };
        if !continue_run {
            if let Some(t) = open.remove(&user) {
                done.push(t);
            }
            open.insert(
                user,
                Task {
                    user,
                    start: a.at,
                    indices: Vec::new(),
                },
            );
        }
        open.get_mut(&user).expect("just inserted").indices.push(i);
        last_at.insert(user, a.at);
    }
    done.extend(open.into_values());
    done.sort_by_key(|t| (t.start, t.user));
    done
}

/// Mean number of accesses per task.
pub fn mean_len(tasks: &[Task]) -> f64 {
    if tasks.is_empty() {
        return 0.0;
    }
    tasks.iter().map(|t| t.len()).sum::<usize>() as f64 / tasks.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::{FileId, FileOp};

    fn acc(at_secs: f64, user: u32) -> Access {
        Access {
            at: SimTime::from_secs_f64(at_secs),
            user,
            file: FileId(0),
            op: FileOp::Read,
            first_block: 1,
            nblocks: 1,
        }
    }

    #[test]
    fn gap_splits_tasks() {
        let accesses = vec![
            acc(0.0, 1),
            acc(1.0, 1),
            acc(2.0, 1),
            acc(30.0, 1),
            acc(31.0, 1),
        ];
        let tasks = split_tasks(&accesses, SimTime::from_secs(5), SimTime::from_secs(300));
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].indices, vec![0, 1, 2]);
        assert_eq!(tasks[1].indices, vec![3, 4]);
    }

    #[test]
    fn users_are_independent() {
        let accesses = vec![acc(0.0, 1), acc(0.5, 2), acc(1.0, 1), acc(1.5, 2)];
        let tasks = split_tasks(&accesses, SimTime::from_secs(5), SimTime::from_secs(300));
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().any(|t| t.user == 1 && t.len() == 2));
        assert!(tasks.iter().any(|t| t.user == 2 && t.len() == 2));
    }

    #[test]
    fn duration_cap_splits_long_runs() {
        // 1 access per second for 400 s: with inter=5 s this is one run,
        // but the 300 s cap forces a split.
        let accesses: Vec<Access> = (0..400).map(|i| acc(i as f64, 1)).collect();
        let tasks = split_tasks(&accesses, SimTime::from_secs(5), SimTime::from_secs(300));
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].len(), 301); // t=0..=300 (cap inclusive at start+300)
        assert_eq!(tasks[1].len(), 99);
    }

    #[test]
    fn access_groups_have_no_cap() {
        let accesses: Vec<Access> = (0..400).map(|i| acc(i as f64 * 0.5, 1)).collect();
        let groups = split_access_groups(&accesses, SimTime::from_secs(1));
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 400);
    }

    #[test]
    fn think_time_splits_groups() {
        let accesses = vec![acc(0.0, 1), acc(0.2, 1), acc(5.0, 1)];
        let groups = split_access_groups(&accesses, SimTime::from_secs(1));
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn larger_inter_merges_tasks() {
        let accesses = vec![acc(0.0, 1), acc(3.0, 1), acc(20.0, 1), acc(22.0, 1)];
        let t1 = split_tasks(&accesses, SimTime::from_secs(1), SimTime::from_secs(300));
        let t5 = split_tasks(&accesses, SimTime::from_secs(5), SimTime::from_secs(300));
        let t60 = split_tasks(&accesses, SimTime::from_secs(60), SimTime::from_secs(300));
        assert!(t1.len() >= t5.len());
        assert!(t5.len() >= t60.len());
        assert_eq!(t60.len(), 1);
        assert_eq!(mean_len(&t60), 4.0);
    }

    #[test]
    fn empty_input() {
        assert!(split_tasks(&[], SimTime::from_secs(5), SimTime::from_secs(300)).is_empty());
        assert_eq!(mean_len(&[]), 0.0);
    }
}
