//! Web / Webcache workload generator (substitute for the NLANR IRCache
//! `rtp` traces — see DESIGN.md §3).
//!
//! Two uses in the paper:
//!
//! - **Web** (Figure 3): where does name-space locality sit for web
//!   objects named by reversed domain (`com.yahoo.www/index.html`)?
//!   Clients revisit sites, so accesses cluster under domains.
//! - **Webcache** (Section 10): the DHT as a Squirrel-style cooperative
//!   cache — a workload with *extreme* churn, where each day writes about
//!   as many bytes as are stored and everything present at the start of a
//!   day is gone by its end (Table 3, Webcache rows). Objects are
//!   inserted on first access and evicted after one day.

use d2_sim::SimTime;
use d2_types::encoding::web_path_slots;
use d2_types::{BlockKind, BlockName, PathSlots, VolumeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tunables for the web trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WebConfig {
    /// Number of distinct web sites (domains).
    pub domains: usize,
    /// Mean pages per domain (Pareto-distributed).
    pub pages_per_domain: f64,
    /// Number of client users (anonymized IPs in the real trace).
    pub users: usize,
    /// Trace length in days.
    pub days: f64,
    /// Mean requests per user per hour.
    pub requests_per_user_hour: f64,
    /// Zipf exponent for domain popularity.
    pub zipf_theta: f64,
    /// Cache eviction age for the Webcache workload (paper: one day).
    pub eviction_secs: u64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            domains: 400,
            pages_per_domain: 40.0,
            users: 60,
            days: 7.0,
            requests_per_user_hour: 150.0,
            zipf_theta: 0.8,
            eviction_secs: 86_400,
        }
    }
}

/// One HTTP request in the trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WebAccess {
    /// Request time.
    pub at: SimTime,
    /// Client id.
    pub user: u32,
    /// Object id (index into [`WebTrace::objects`]).
    pub object: u32,
}

/// One cacheable web object.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WebObject {
    /// `reversed.domain/path` name.
    pub url: String,
    /// Figure 4 slot encoding via [`web_path_slots`].
    pub slots: PathSlots,
    /// Object size in bytes.
    pub size: u64,
}

/// A generated web trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WebTrace {
    /// All objects that can be requested.
    pub objects: Vec<WebObject>,
    /// Time-ordered requests.
    pub accesses: Vec<WebAccess>,
    /// Volume id for key encoding.
    pub volume: VolumeId,
    /// Configuration used.
    pub config: WebConfig,
}

/// Zipf sampler over `n` items with exponent `theta` (approximate
/// inverse-CDF method, deterministic given the RNG).
pub fn zipf<R: Rng + ?Sized>(rng: &mut R, n: usize, theta: f64) -> usize {
    // Weight of rank r is (r+1)^-theta; sample by rejection against the
    // integrable envelope (fast enough for workload generation).
    let u: f64 = rng.random::<f64>().max(1e-12);
    // Inverse of the continuous CDF for x^-theta on [1, n].
    let exp = 1.0 - theta;
    let x = if (exp).abs() < 1e-9 {
        (u * (n as f64).ln()).exp()
    } else {
        ((u * ((n as f64).powf(exp) - 1.0)) + 1.0).powf(1.0 / exp)
    };
    // x ∈ [1, n]; map to 0-based rank.
    ((x - 1.0).max(0.0) as usize).min(n - 1)
}

impl WebTrace {
    /// Generates a trace.
    pub fn generate<R: Rng + ?Sized>(cfg: &WebConfig, rng: &mut R) -> WebTrace {
        let tlds = ["com", "org", "net", "edu", "io"];
        let mut objects = Vec::new();
        let mut domain_pages: Vec<(usize, usize)> = Vec::new(); // (first object, count)
        for d in 0..cfg.domains {
            let tld = tlds[d % tlds.len()];
            let host = format!("www.site{d}.{tld}");
            let pages = 1
                + ((cfg.pages_per_domain - 1.0)
                    * rng.random::<f64>().max(1e-9).powf(1.5).recip().min(4.0)
                    / 4.0) as usize;
            let first = objects.len();
            for p in 0..pages {
                let url = format!("{host}/page{p}.html");
                let size = web_object_size(rng);
                objects.push(WebObject {
                    url: url.clone(),
                    slots: web_path_slots(&url),
                    size,
                });
            }
            domain_pages.push((first, pages));
        }

        let mut accesses = Vec::new();
        let horizon = cfg.days * 86_400.0;
        for u in 0..cfg.users {
            let mut t = rng.random::<f64>() * 120.0;
            while t < horizon {
                let hour = (t / 3600.0) % 24.0;
                let rate = cfg.requests_per_user_hour * crate::harvard::diurnal(hour) / 3600.0;
                // A browsing session on one (Zipf-popular) domain.
                let dom = zipf(rng, cfg.domains, cfg.zipf_theta);
                let (first, count) = domain_pages[dom];
                let clicks = 1 + rng.random_range(0..12);
                for _ in 0..clicks {
                    if t >= horizon {
                        break;
                    }
                    let page = zipf(rng, count.max(1), 0.6);
                    accesses.push(WebAccess {
                        at: SimTime::from_secs_f64(t),
                        user: u as u32,
                        object: (first + page) as u32,
                    });
                    t += 1.0 + rng.random::<f64>() * 20.0;
                }
                // Gap until the next session.
                t += (60.0 + rng.random::<f64>() * 7200.0) / rate.max(1e-4) / 3600.0;
            }
        }
        accesses.sort_by_key(|a| (a.at, a.user));
        WebTrace {
            objects,
            accesses,
            volume: VolumeId::from_name("webcache"),
            config: *cfg,
        }
    }

    /// The block names an object occupies in the cache DHT (inode + data
    /// blocks, like a small file).
    pub fn blocks_of(&self, object: u32) -> Vec<BlockName> {
        let o = &self.objects[object as usize];
        let data_blocks = o.size.div_ceil(d2_types::BLOCK_SIZE as u64).max(1);
        (0..=data_blocks)
            .map(|b| BlockName {
                volume: self.volume,
                slots: o.slots,
                path: o.url.clone(),
                block_no: b,
                version: 0,
                kind: if b == 0 {
                    BlockKind::Inode
                } else {
                    BlockKind::Data
                },
            })
            .collect()
    }
}

/// Web object sizes: log-normal-ish, mean ≈ 15 KB, capped at 4 MB.
pub fn web_object_size<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    let v: f64 = rng.random::<f64>().max(1e-12);
    // Box–Muller.
    let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
    let size = (9.0 + 1.2 * z).exp(); // ln-mean 9 → ~8 KB median
    (size as u64).clamp(200, 4 << 20)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> WebConfig {
        WebConfig {
            domains: 50,
            users: 10,
            days: 1.0,
            ..WebConfig::default()
        }
    }

    #[test]
    fn trace_ordered_and_nonempty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let t = WebTrace::generate(&small(), &mut rng);
        assert!(!t.accesses.is_empty());
        assert!(!t.objects.is_empty());
        for w in t.accesses.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for a in &t.accesses {
            assert!((a.object as usize) < t.objects.len());
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let t = WebTrace::generate(&small(), &mut rng);
        let mut counts = vec![0u64; t.objects.len()];
        for a in &t.accesses {
            counts[a.object as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top10: u64 = counts.iter().take(counts.len() / 10).sum();
        assert!(
            top10 as f64 / total as f64 > 0.3,
            "top 10% of objects should draw >30% of requests"
        );
    }

    #[test]
    fn same_domain_objects_share_slot_prefix() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = WebTrace::generate(&small(), &mut rng);
        // First two pages of domain 0 share the reversed-domain prefix.
        let a = &t.objects[0];
        if t.objects.len() > 1 && t.objects[1].url.starts_with("www.site0.") {
            let b = &t.objects[1];
            assert_eq!(a.slots.slots()[..3], b.slots.slots()[..3]);
        }
    }

    #[test]
    fn zipf_sampler_in_range_and_skewed() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            let i = zipf(&mut rng, 100, 0.8);
            assert!(i < 100);
            counts[i] += 1;
        }
        assert!(counts[0] > counts[50] * 3, "rank 0 should dominate rank 50");
    }

    #[test]
    fn object_sizes_reasonable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sizes: Vec<u64> = (0..5000).map(|_| web_object_size(&mut rng)).collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!(
            (2_000.0..80_000.0).contains(&mean),
            "mean web object size {mean}"
        );
        assert!(sizes.iter().all(|&s| (200..=4 << 20).contains(&s)));
    }

    #[test]
    fn blocks_of_small_object() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let t = WebTrace::generate(&small(), &mut rng);
        let blocks = t.blocks_of(0);
        assert!(blocks.len() >= 2); // inode + >= 1 data block
        assert_eq!(blocks[0].block_no, 0);
        // Data block keys are adjacent under D2.
        if blocks.len() >= 3 {
            assert!(blocks[1].d2_key() < blocks[2].d2_key());
        }
    }
}
