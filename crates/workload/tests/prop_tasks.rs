//! Property tests for task/access-group segmentation and trace sanity.

use d2_sim::SimTime;
use d2_workload::namespace::{Access, FileId, FileOp};
use d2_workload::{split_access_groups, split_tasks};
use proptest::prelude::*;

fn arb_accesses() -> impl Strategy<Value = Vec<Access>> {
    prop::collection::vec((0u32..4, 0u64..2000), 1..200).prop_map(|mut raw| {
        raw.sort_by_key(|&(_, t)| t);
        raw.into_iter()
            .map(|(user, t)| Access {
                at: SimTime::from_millis(t * 100),
                user,
                file: FileId(0),
                op: FileOp::Read,
                first_block: 1,
                nblocks: 1,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tasks partition each user's accesses exactly once, in order.
    #[test]
    fn tasks_partition_accesses(accesses in arb_accesses(), inter_s in 1u64..60) {
        let inter = SimTime::from_secs(inter_s);
        let tasks = split_tasks(&accesses, inter, SimTime::from_secs(300));
        let mut seen = vec![false; accesses.len()];
        for task in &tasks {
            for &i in &task.indices {
                prop_assert!(!seen[i], "access {i} in two tasks");
                seen[i] = true;
                prop_assert_eq!(accesses[i].user, task.user);
            }
            // In-order within a task.
            for w in task.indices.windows(2) {
                prop_assert!(accesses[w[0]].at <= accesses[w[1]].at);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every access belongs to a task");
    }

    /// Within a task, consecutive gaps are < inter and the span respects
    /// the duration cap; consecutive tasks of a user are separated by
    /// >= inter or forced by the cap.
    #[test]
    fn task_boundaries_respect_inter(accesses in arb_accesses(), inter_s in 1u64..60) {
        let inter = SimTime::from_secs(inter_s);
        let cap = SimTime::from_secs(300);
        let tasks = split_tasks(&accesses, inter, cap);
        for task in &tasks {
            let first = accesses[task.indices[0]].at;
            for w in task.indices.windows(2) {
                let gap = accesses[w[1]].at.saturating_sub(accesses[w[0]].at);
                prop_assert!(gap < inter, "intra-task gap {gap} >= inter");
                prop_assert!(
                    accesses[w[1]].at.saturating_sub(first) <= cap,
                    "task exceeded the 5-minute cap"
                );
            }
        }
    }

    /// A larger inter never produces more tasks.
    #[test]
    fn task_count_monotone_in_inter(accesses in arb_accesses()) {
        let cap = SimTime::from_secs(300);
        let mut last = usize::MAX;
        for inter_s in [1u64, 5, 15, 60] {
            let n = split_tasks(&accesses, SimTime::from_secs(inter_s), cap).len();
            prop_assert!(n <= last, "inter={inter_s}: {n} > {last}");
            last = n;
        }
    }

    /// Access groups with think=1s are a refinement of 1s-tasks without a
    /// cap: same boundaries except where the cap split tasks.
    #[test]
    fn groups_partition_too(accesses in arb_accesses()) {
        let groups = split_access_groups(&accesses, SimTime::from_secs(1));
        let total: usize = groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(total, accesses.len());
    }
}
