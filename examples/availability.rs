//! Task availability under PlanetLab-like failures — the Section 8 story.
//!
//! Reproduces Figure 7 (task unavailability per system and inter-arrival
//! threshold), Figure 8 (ranked per-user unavailability), and Table 2
//! (mean objects/nodes per task).
//!
//! Run with: `cargo run --release --example availability`

use d2::experiments::{fig7, fig8, table2, Scale};
use d2::sim::{FailureModel, SimTime};
use d2::workload::HarvardTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::Quick;
    // The stressed quick-scale availability regime (the calibrated
    // PlanetLab-like defaults produce nearly zero failures at this scale,
    // which is faithful but uninformative — see EXPERIMENTS.md).
    let hcfg = d2::workload::HarvardConfig {
        users: 12,
        days: 2.0,
        initial_bytes: 64 << 20,
        reads_per_user_hour: 60.0,
        ..d2::workload::HarvardConfig::default()
    };
    let trace = HarvardTrace::generate(&hcfg, &mut StdRng::seed_from_u64(42));
    let cfg = d2::core::ClusterConfig {
        nodes: 32,
        replicas: 3,
        seed: 7,
        ..d2::core::ClusterConfig::default()
    };
    let model = FailureModel {
        mttf_secs: 2.0 * 86_400.0,
        mttr_secs: 3.0 * 3600.0,
        correlated_events: 6.0,
        correlated_fraction: 0.25,
        correlated_mttr_secs: 2.0 * 3600.0,
        duration_secs: hcfg.days * 86_400.0,
    };
    println!(
        "replaying {} accesses against a {}-node cluster with PlanetLab-like failures …",
        trace.accesses.len(),
        cfg.nodes
    );

    let inters = [
        SimTime::from_secs(5),
        SimTime::from_secs(60),
        SimTime::from_secs(300),
    ];
    let table = table2::run(
        &trace,
        &cfg,
        &[
            SimTime::from_secs(1),
            SimTime::from_secs(5),
            SimTime::from_secs(15),
            SimTime::from_secs(60),
        ],
        scale.warmup_days(),
    );
    println!("\n{}", table.render());

    let fig = fig7::run(&trace, &cfg, &model, &inters, scale.trials(), 1.0, 100);
    println!("{}", fig.render());

    let fig = fig8::run(&trace, &cfg, &model, 1.0, 101);
    println!("{}", fig.render());
    for s in &fig.series {
        println!(
            "{:>18}: {} of {} users affected",
            s.system.label(),
            s.affected(),
            s.ranked.len()
        );
    }
}
