//! Head-to-head: D2 vs traditional vs traditional-file DHTs on a
//! Harvard-like workload — the Section 9 performance story in one run.
//!
//! Prints the reproduced Figure 9 (lookup messages per node), Figure 10
//! (speedup over traditional), Figure 13 (cache miss rates), and the
//! Figure 14/15 scatter summaries.
//!
//! Run with: `cargo run --release --example defrag_vs_traditional`

use d2::experiments::perf_suite::{self, SuiteConfig};
use d2::experiments::{fig10, fig13, fig14_15, fig9, Scale};
use d2::workload::HarvardTrace;
use d2_core::SystemKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::Quick;
    println!("generating Harvard-like workload …");
    let trace = HarvardTrace::generate(&scale.harvard(), &mut StdRng::seed_from_u64(42));
    println!(
        "  {} accesses by {} users over {} days, {} files",
        trace.accesses.len(),
        trace.config.users,
        trace.config.days,
        trace.namespace.len()
    );

    let cfg = SuiteConfig {
        sizes: scale.perf_sizes(),
        kbps: vec![1500, 384],
        measure_groups: 150,
        seed: 7,
        warmup_days: scale.warmup_days(),
        ..SuiteConfig::default()
    };
    println!(
        "running the performance sweep: sizes {:?} × bandwidths {:?} × 3 systems × 2 modes …",
        cfg.sizes, cfg.kbps
    );
    let suite = perf_suite::run(&trace, &cfg);

    println!("\n{}", fig9::from_suite(&suite).render());
    println!(
        "{}",
        fig10::from_suite(&suite, SystemKind::Traditional).render()
    );
    println!("{}", fig13::from_suite(&suite).render());
    let largest = *cfg.sizes.last().unwrap();
    println!("{}", fig14_15::from_suite(&suite, largest, 1500).render());
}
