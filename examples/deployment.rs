//! A live thread-per-node deployment with real recursive lookups —
//! the runnable analogue of the paper's 1,000-virtual-node Emulab runs.
//!
//! Every node is an OS thread running the same protocol state machine as
//! the simulations; blocks are stored with `r = 3` replication through
//! actual joins, stabilization rounds, and routed lookups.
//!
//! Run with: `cargo run --release --example deployment [nodes]`
//! (default 200 nodes; pass 1000 for the paper-scale ring)

use d2::net::Deployment;
use d2::types::{sha256, Key};
use std::time::Instant;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    println!("launching {nodes} node threads …");
    let t0 = Instant::now();
    let dep = Deployment::launch(nodes, 3);
    dep.wait_stable();
    println!("ring stabilized in {:.2?}", t0.elapsed());

    // Store a small file tree's worth of blocks.
    let files = [
        "/home/u1/paper.tex",
        "/home/u1/figs/fig1.pdf",
        "/usr/share/lib.so",
    ];
    let mut keys = Vec::new();
    let t1 = Instant::now();
    for (i, path) in files.iter().enumerate() {
        for block in 0..8u64 {
            let digest = sha256(format!("{path}:{block}").as_bytes());
            let mut raw = [0u8; 64];
            raw[..32].copy_from_slice(digest.as_bytes());
            raw[32..40].copy_from_slice(&block.to_be_bytes());
            let key = Key::from_bytes(raw);
            let payload = format!("contents of {path} block {block} ({i})").into_bytes();
            dep.put(key, payload).expect("put");
            keys.push((key, path, block));
        }
    }
    println!("stored {} blocks in {:.2?}", keys.len(), t1.elapsed());

    // Read everything back through routed lookups.
    let t2 = Instant::now();
    for (key, path, block) in &keys {
        let data = dep.get(*key).expect("get");
        assert!(String::from_utf8_lossy(&data).contains(path.split('/').next_back().unwrap()));
        let _ = block;
    }
    println!("fetched {} blocks in {:.2?}", keys.len(), t2.elapsed());

    // Ring health report.
    let statuses = dep.statuses();
    let with_pred = statuses.iter().filter(|s| s.predecessor.is_some()).count();
    let total_blocks: usize = statuses.iter().map(|s| s.blocks).sum();
    println!(
        "ring health: {}/{} nodes with predecessors, {} replica-copies stored",
        with_pred,
        statuses.len(),
        total_blocks
    );
    dep.shutdown();
    println!("deployment OK");
}
