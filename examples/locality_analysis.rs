//! The Section 4 motivation: how much locality do real(istic) workloads
//! have, and does name-space ordering capture it? Reproduces Figure 3
//! over all three workloads.
//!
//! Run with: `cargo run --release --example locality_analysis`

use d2::experiments::{fig3, Scale};
use d2::workload::{HarvardTrace, HpConfig, HpTrace, WebTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::Quick;
    let mut rng = StdRng::seed_from_u64(42);
    println!("generating the three workloads of Table 1 …");
    let harvard = HarvardTrace::generate(&scale.harvard(), &mut rng);
    let hp = HpTrace::generate(
        &HpConfig {
            apps: 8,
            days: 1.0,
            disk_blocks: 600_000,
            ..HpConfig::default()
        },
        &mut rng,
    );
    let web = WebTrace::generate(&scale.web(), &mut rng);
    println!(
        "  harvard: {} accesses | hp: {} accesses | web: {} accesses",
        harvard.accesses.len(),
        hp.accesses.len(),
        web.accesses.len()
    );

    // Paper: 250 MB per node. At quick scale we shrink node capacity so
    // the scenario still spans many nodes.
    let fig = fig3::run(&harvard, &hp, &web, 2 << 20);
    println!("\n{}", fig.render());
    println!(
        "reading the table: *ordered* cuts nodes-per-user-hour by {:.0}x on Harvard \
         (paper: ~10x), and the gap to the unreachable lower bound stays within an \
         order of magnitude.",
        1.0 / fig.rows[0].ordered
    );
}
