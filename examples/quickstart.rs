//! Quickstart: a D2 file system running on a simulated 32-node cluster.
//!
//! Creates a volume, writes a small project tree through the write-back
//! cache, flushes it into the DHT, reads it back through the verifying
//! reader path, and then kills a node to show replicas keeping the data
//! available.
//!
//! Run with: `cargo run --release --example quickstart`

use d2::core::{ClusterConfig, SimCluster, SystemKind};
use d2::sim::SimTime;

fn main() {
    let cfg = ClusterConfig {
        nodes: 32,
        replicas: 3,
        seed: 7,
        ..ClusterConfig::default()
    };
    let mut cluster = SimCluster::new(SystemKind::D2, &cfg);
    println!(
        "started a {}-node D2 cluster (r = {})",
        cfg.nodes, cfg.replicas
    );

    cluster.create_volume("home");
    cluster.write_file("home", "/projects/d2/README.md", b"# my defragmented fs\n");
    cluster.write_file("home", "/projects/d2/src/main.rs", b"fn main() {}\n");
    cluster.write_file("home", "/projects/d2/data/blob.bin", &vec![0xD2u8; 40_000]);
    cluster.write_file("home", "/notes.txt", b"d2 keeps my files together");
    cluster.flush();
    println!("wrote 4 files and flushed the 30s write-back cache");

    // Read back through the verifying reader (root signature + per-block
    // content hashes).
    let readme = cluster.read_file("home", "/projects/d2/README.md").unwrap();
    assert_eq!(readme, b"# my defragmented fs\n");
    let blob = cluster
        .read_file("home", "/projects/d2/data/blob.bin")
        .unwrap();
    assert_eq!(blob.len(), 40_000);
    println!("read files back with integrity verification");

    // Locality in action: how many nodes ended up holding data?
    let loads = cluster.total_load_blocks();
    let busy = loads.iter().filter(|&&l| l > 0).count();
    println!(
        "blocks landed on {busy} of {} nodes (locality keeps related data together)",
        cfg.nodes
    );

    // Fault tolerance: kill the heaviest node and read again.
    let victim = cluster.ring.nodes()[0];
    cluster.node_down(victim, SimTime::from_secs(60));
    let again = cluster
        .read_file("home", "/projects/d2/src/main.rs")
        .unwrap();
    assert_eq!(again, b"fn main() {}\n");
    println!("killed node {victim} — file still readable from replicas");

    println!(
        "stats: {} bytes written, {} bytes migrated, {} balance moves",
        cluster.stats.write_bytes, cluster.stats.migration_bytes, cluster.stats.balance_moves
    );
    println!("quickstart OK");
}
