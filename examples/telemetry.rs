//! Telemetry-plane smoke: scrape a live in-process cluster.
//!
//! Launches a three-node channel deployment, writes a few traced
//! blocks, scrapes every node's metric registry and flight recorder
//! over the wire (`Request::MetricsDump`), and prints the merged
//! `d2-node top` view plus the merged registry snapshot as JSON.
//!
//! Exits non-zero if the scrape misses a node, the merged snapshot is
//! empty, or the JSON is structurally broken — `scripts/check.sh` runs
//! this as the telemetry smoke test.
//!
//! Run with: `cargo run --release --example telemetry`

use d2::net::{render_top, Deployment};
use d2::types::Key;

fn main() {
    const NODES: usize = 3;
    let dep = Deployment::launch(NODES, 2);
    dep.wait_stable();

    for i in 0..5u64 {
        let key = Key::from_fraction((i as f64 + 0.5) / 5.0);
        let (written, trace_id) = dep
            .ops()
            .put_traced(key, format!("block-{i}").into_bytes(), 2)
            .expect("put");
        assert_eq!(written, 2);
        assert_ne!(trace_id, 0, "traced put must allocate a trace id");
    }

    let scrape = dep.scrape();
    assert_eq!(
        scrape.nodes.len(),
        NODES,
        "scraped {}/{NODES} nodes",
        scrape.nodes.len()
    );

    println!("{}", render_top(&scrape, &|a| format!("node-{a}")));

    let json = scrape.merged.snapshot().to_json();
    // Structural sanity without a JSON parser in the dependency set:
    // non-empty object, balanced braces, and the counters we know every
    // node increments.
    assert!(json.len() > 2, "merged snapshot serialized empty: {json}");
    assert!(
        json.starts_with('{') && json.ends_with('}'),
        "not an object: {json}"
    );
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced braces in snapshot JSON");
    for key in ["node.puts", "node.lookups", "node.msgs_in"] {
        assert!(json.contains(key), "merged snapshot missing {key}: {json}");
    }

    println!("merged snapshot: {json}");
    println!(
        "telemetry smoke OK: {} nodes scraped, {} spans collected",
        scrape.nodes.len(),
        scrape.all_spans().len()
    );
    dep.shutdown();
}
