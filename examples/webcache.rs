//! The DHT as a Squirrel-style cooperative web cache — the paper's
//! extreme-churn stress test (Section 10).
//!
//! Reproduces Table 3 (daily churn ratios), Table 4 (write vs migration
//! traffic), and Figure 17 (load imbalance over time under Webcache).
//!
//! Run with: `cargo run --release --example webcache`

use d2::experiments::fig16_17::{self, ALL_SYSTEMS};
use d2::experiments::{table3, table4, Scale};
use d2::sim::SimTime;
use d2::workload::{HarvardTrace, WebTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::Quick;
    let harvard = HarvardTrace::generate(&scale.harvard(), &mut StdRng::seed_from_u64(42));
    let web = WebTrace::generate(&scale.web(), &mut StdRng::seed_from_u64(42));
    println!(
        "web trace: {} requests over {} objects ({} domains)",
        web.accesses.len(),
        web.objects.len(),
        web.config.domains
    );

    println!("\n{}", table3::run(&harvard, &web).render());

    let cfg = scale.cluster(7);
    let warmup = SimTime::from_secs_f64(scale.warmup_days() * 86_400.0 * 2.0);
    println!("{}", table4::run(&harvard, &web, &cfg, warmup).render());

    let fig = fig16_17::fig17(&web, &cfg, &ALL_SYSTEMS, SimTime::from_secs(3600));
    println!("{}", fig.render());
    for sys in ALL_SYSTEMS {
        if let Some(tail) = fig.tail_mean(sys, 0.3) {
            println!("tail imbalance {:>18}: {tail:.3}", sys.label());
        }
    }
}
