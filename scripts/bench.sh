#!/usr/bin/env bash
# Perf trajectory data for the experiment harness. On a release build:
#   1. times every experiment individually (--jobs 1),
#   2. times `d2-exp all --scale quick` at --jobs 1 vs --jobs N
#      (default N: nproc) and verifies both runs are byte-identical,
#   3. writes wall-clock per experiment + the overall speedup to
#      BENCH_perf.json.
# Run from the repository root: ./scripts/bench.sh [N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 1)}"
SEED=42

echo "==> cargo build --release -p d2-experiments"
cargo build --release -p d2-experiments
BIN=target/release/d2-exp

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

now_ms() { date +%s%3N; }

run_timed() { # run_timed <name> <jobs> <stdout-file> [trace-file] -> wall ms
    local name="$1" jobs="$2" out="$3" trace="${4:-}" t0 t1
    t0=$(now_ms)
    if [ -n "$trace" ]; then
        "$BIN" "$name" --scale quick --seed "$SEED" --jobs "$jobs" \
            --obs-out "$trace" > "$out"
    else
        "$BIN" "$name" --scale quick --seed "$SEED" --jobs "$jobs" > "$out"
    fi
    t1=$(now_ms)
    echo $((t1 - t0))
}

EXPERIMENTS="fig3 table2 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14-15 table3 table4 fig16 fig17"

echo "==> per-experiment wall-clock (--jobs 1)"
PER_EXP=""
for name in $EXPERIMENTS; do
    ms=$(run_timed "$name" 1 "$TMP/one.txt")
    echo "    ${name}: ${ms} ms"
    PER_EXP="${PER_EXP}    \"${name}\": ${ms},"$'\n'
done
PER_EXP="${PER_EXP%,$'\n'}"

echo "==> d2-exp all --scale quick --jobs 1"
MS_SEQ=$(run_timed all 1 "$TMP/out1.txt" "$TMP/trace1.jsonl")
echo "    ${MS_SEQ} ms"

echo "==> d2-exp all --scale quick --jobs ${JOBS}"
MS_PAR=$(run_timed all "$JOBS" "$TMP/outN.txt" "$TMP/traceN.jsonl")
echo "    ${MS_PAR} ms"

echo "==> verifying byte-identical output at both job counts"
cmp "$TMP/out1.txt" "$TMP/outN.txt"
cmp "$TMP/trace1.jsonl" "$TMP/traceN.jsonl"
echo "    stdout and trace JSONL identical"

SPEEDUP=$(awk -v a="$MS_SEQ" -v b="$MS_PAR" 'BEGIN { printf "%.2f", a / (b > 0 ? b : 1) }')

cat > BENCH_perf.json <<EOF
{
  "experiment": "d2-exp all --scale quick --seed ${SEED}",
  "wall_ms_per_experiment_jobs1": {
${PER_EXP}
  },
  "jobs_seq": 1,
  "jobs_par": ${JOBS},
  "wall_ms_seq": ${MS_SEQ},
  "wall_ms_par": ${MS_PAR},
  "speedup": ${SPEEDUP},
  "outputs_identical": true
}
EOF
echo "==> wrote BENCH_perf.json (speedup ${SPEEDUP}x at ${JOBS} jobs)"
