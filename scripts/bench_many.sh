#!/usr/bin/env bash
# Paper-scale benchmark: boots a 1,000-node single-process cluster with
# `d2-node serve-many`, verifies the Zave ring invariants across all
# nodes, drives it with `d2-load` in serial and pipelined mode, and
# merges the results into BENCH_wire.json under "serve_many_1000".
# Run from the repository root: ./scripts/bench_many.sh
#
# Prerequisite: a file-descriptor budget comfortably above the client
# connection count (`ulimit -n 4096` is plenty — co-hosted nodes talk
# over the in-process loopback path and use no sockets at all).
set -euo pipefail
cd "$(dirname "$0")/.."

NODES="${NODES:-1000}"
WORKERS="${WORKERS:-2}"
WINDOW="${WINDOW:-64}"
OPS="${OPS:-4000}"
KEYS="${KEYS:-128}"
REPLICAS="${REPLICAS:-3}"
PORT="${PORT:-0}"

echo "==> cargo build --release -p d2-net -p d2-load"
cargo build --release -p d2-net -p d2-load
BIN=target/release

TMP="$(mktemp -d)"
SRV=""
cleanup() {
    [ -n "$SRV" ] && kill "$SRV" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "==> booting ${NODES} nodes in one process (d2-node serve-many)"
BOOT_START=$(date +%s.%N)
"$BIN/d2-node" serve-many --nodes "$NODES" --port "$PORT" --replicas "$REPLICAS" \
    > "$TMP/many.out" 2> "$TMP/many.err" &
SRV=$!
for _ in $(seq 1 600); do
    grep -q "^STABLE" "$TMP/many.out" 2>/dev/null && break
    kill -0 "$SRV" 2>/dev/null || { cat "$TMP/many.err" >&2; exit 1; }
    sleep 0.5
done
grep -q "^STABLE" "$TMP/many.out" || { echo "cluster never stabilized" >&2; exit 1; }
BOOT_S=$(awk -v a="$BOOT_START" -v b="$(date +%s.%N)" 'BEGIN { printf "%.1f", b - a }')
ENTRY=$(awk '/^LISTEN/ { print $2; exit }' "$TMP/many.out")
THREADS=$(awk '/^Threads:/ { print $2 }' "/proc/$SRV/status")
RSS_KB=$(awk '/^VmRSS:/ { print $2 }' "/proc/$SRV/status")
echo "    STABLE in ${BOOT_S}s; entry $ENTRY; $THREADS OS threads, ${RSS_KB} kB RSS"

echo "==> d2-node check (Zave ring invariants over all ${NODES} nodes)"
"$BIN/d2-node" check --node "$ENTRY" --expect "$NODES"

run_load() { # run_load <mode>
    "$BIN/d2-load" --node "$ENTRY" --workers "$WORKERS" --window "$WINDOW" \
        --ops "$OPS" --keys "$KEYS" --replicas "$REPLICAS" \
        --mode "$1" --timeout-ms 30000 --json
}

echo "==> d2-load --mode serial (${WORKERS} workers, window 1)"
SERIAL=$(run_load serial)
echo "    $SERIAL"
echo "==> d2-load --mode pipelined (${WORKERS} workers, window ${WINDOW})"
PIPELINED=$(run_load pipelined)
echo "    $PIPELINED"

tput_of() { echo "$1" | jq .throughput_ops_s; }
SPEEDUP=$(awk -v a="$(tput_of "$PIPELINED")" -v b="$(tput_of "$SERIAL")" \
    'BEGIN { printf "%.2f", a / (b > 0 ? b : 1) }')

echo "==> d2-node check (invariants still hold under load)"
"$BIN/d2-node" check --node "$ENTRY" --expect "$NODES" | tail -1

echo "==> graceful drain (d2-node stop --all)"
"$BIN/d2-node" stop --node "$ENTRY" --all
for _ in $(seq 1 60); do
    kill -0 "$SRV" 2>/dev/null || break
    sleep 0.5
done
kill -0 "$SRV" 2>/dev/null && { echo "serve-many did not exit after stop --all" >&2; exit 1; }
SRV=""

[ -f BENCH_wire.json ] || echo '{}' > BENCH_wire.json
jq --argjson serial "$SERIAL" --argjson pipelined "$PIPELINED" \
   --arg exp "d2-load vs ${NODES}-node single-process cluster (serve-many; ${WORKERS} workers, ${OPS} ops, ${KEYS} keys, replicas ${REPLICAS})" \
   --argjson boot_s "$BOOT_S" --argjson threads "$THREADS" --argjson rss_kb "$RSS_KB" \
   '.serve_many_1000 = {
      experiment: $exp,
      note: "d2-load keys sit in the low bits of the id space, so all of them hash near the ring origin: this measures a hotspot workload routed through the full ring, not a uniformly spread one. Pipelining hides the multi-hop lookup latency, hence the large speedup.",
      boot_to_stable_s: $boot_s,
      os_threads: $threads,
      rss_kb: $rss_kb,
      serial: $serial,
      pipelined: $pipelined,
      pipelined_speedup: (($pipelined.throughput_ops_s / ([$serial.throughput_ops_s, 0.001] | max)) * 100 | round / 100)
    }' BENCH_wire.json > "$TMP/bench.json"
mv "$TMP/bench.json" BENCH_wire.json
echo "==> merged serve_many_1000 into BENCH_wire.json (pipelined ${SPEEDUP}x serial)"
