#!/usr/bin/env bash
# Redundancy-ablation summary for the perf trajectory. On a release
# build:
#   1. runs `d2-exp redundancy --scale quick` at --jobs 1 and --jobs N
#      (default N: nproc) and verifies both tables are byte-identical,
#   2. parses the per-policy rows (availability, ideal/measured storage
#      factor, lazy-repair bytes, throttled bytes, skips, backlog),
#   3. writes rows + wall-clock + speedup to BENCH_redundancy.json.
# Run from the repository root: ./scripts/bench_redundancy.sh [N]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc 2>/dev/null || echo 1)}"
SEED=42

echo "==> cargo build --release -p d2-experiments"
cargo build --release -p d2-experiments
BIN=target/release/d2-exp

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

now_ms() { date +%s%3N; }

t0=$(now_ms)
"$BIN" redundancy --scale quick --seed "$SEED" --jobs 1 > "$TMP/j1.txt"
t1=$(now_ms)
MS_J1=$((t1 - t0))

t0=$(now_ms)
"$BIN" redundancy --scale quick --seed "$SEED" --jobs "$JOBS" > "$TMP/jn.txt"
t1=$(now_ms)
MS_JN=$((t1 - t0))

echo "==> determinism: --jobs 1 vs --jobs $JOBS"
if ! cmp -s "$TMP/j1.txt" "$TMP/jn.txt"; then
    echo "FAIL: redundancy output differs across --jobs" >&2
    diff "$TMP/j1.txt" "$TMP/jn.txt" >&2 || true
    exit 1
fi
cat "$TMP/j1.txt"

# Table rows: policy ideal-x stored-x node-unavail avail repair-KiB
# throttled-KiB lazy-skips repaired backlog. Skip title/header/rule.
ROWS=$(awk '
    NF == 10 && $1 ~ /^(r=|ec\()/ {
        gsub(/%/, "", $4); gsub(/%/, "", $5)
        printf "%s    {\"policy\": \"%s\", \"ideal_storage_x\": %s, \"stored_x\": %s, \"node_unavail_pct\": %s, \"availability_pct\": %s, \"repair_kib\": %s, \"throttled_kib\": %s, \"lazy_skips\": %s, \"repaired\": %s, \"backlog\": %s}", sep, $1, $2, $3, $4, $5, $6, $7, $8, $9, $10
        sep = ",\n"
    }
' "$TMP/j1.txt")

cat > BENCH_redundancy.json <<EOF
{
  "experiment": "redundancy",
  "scale": "quick",
  "seed": $SEED,
  "jobs": $JOBS,
  "wall_ms_jobs1": $MS_J1,
  "wall_ms_jobsN": $MS_JN,
  "speedup": $(awk "BEGIN { printf \"%.2f\", $MS_J1 / ($MS_JN + 1) }"),
  "deterministic_across_jobs": true,
  "rows": [
$ROWS
  ]
}
EOF

echo "==> wrote BENCH_redundancy.json"
