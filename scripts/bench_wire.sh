#!/usr/bin/env bash
# Data-plane benchmark: drives a real multi-process TCP cluster with
# `d2-load` in serial (window 1) and pipelined (window W) mode at the
# same worker count, and writes both reports plus the speedup to
# BENCH_wire.json. Run from the repository root: ./scripts/bench_wire.sh
set -euo pipefail
cd "$(dirname "$0")/.."

NODES="${NODES:-3}"
WORKERS="${WORKERS:-2}"
WINDOW="${WINDOW:-64}"
OPS="${OPS:-4000}"
KEYS="${KEYS:-128}"
REPLICAS="${REPLICAS:-2}"

echo "==> cargo build --release -p d2-net -p d2-load"
cargo build --release -p d2-net -p d2-load
BIN=target/release

TMP="$(mktemp -d)"
PIDS=()
cleanup() {
    for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

wait_listen() { # wait_listen <outfile> -> ip:port
    for _ in $(seq 1 50); do
        if grep -q LISTEN "$1" 2>/dev/null; then
            grep -oE '[0-9.]+:[0-9]+' "$1" | head -1
            return 0
        fi
        sleep 0.1
    done
    echo "node never printed LISTEN (see $1)" >&2
    exit 1
}

echo "==> launching ${NODES}-node cluster (one process per node)"
"$BIN/d2-node" serve --listen 127.0.0.1:0 --pos 0.01 --replicas "$REPLICAS" \
    > "$TMP/n0.out" 2> "$TMP/n0.err" &
PIDS+=($!)
SEED=$(wait_listen "$TMP/n0.out")
echo "    seed node at $SEED"
for i in $(seq 1 $((NODES - 1))); do
    POS=$(awk -v i="$i" -v n="$NODES" 'BEGIN { printf "%.4f", (i + 0.5) / n }')
    "$BIN/d2-node" serve --listen 127.0.0.1:0 --seed "$SEED" --pos "$POS" \
        --replicas "$REPLICAS" > "$TMP/n$i.out" 2> "$TMP/n$i.err" &
    PIDS+=($!)
    wait_listen "$TMP/n$i.out" > /dev/null
done
sleep 2 # let the ring stabilize

run_load() { # run_load <mode>
    "$BIN/d2-load" --node "$SEED" --workers "$WORKERS" --window "$WINDOW" \
        --ops "$OPS" --keys "$KEYS" --replicas "$REPLICAS" \
        --mode "$1" --timeout-ms 5000 --json
}

echo "==> d2-load --mode serial (${WORKERS} workers, window 1)"
SERIAL=$(run_load serial)
echo "    $SERIAL"
echo "==> d2-load --mode pipelined (${WORKERS} workers, window ${WINDOW})"
PIPELINED=$(run_load pipelined)
echo "    $PIPELINED"

tput_of() { echo "$1" | grep -oE '"throughput_ops_s": [0-9.]+' | grep -oE '[0-9.]+'; }
T_SER=$(tput_of "$SERIAL")
T_PIP=$(tput_of "$PIPELINED")
SPEEDUP=$(awk -v a="$T_PIP" -v b="$T_SER" 'BEGIN { printf "%.2f", a / (b > 0 ? b : 1) }')

cat > BENCH_wire.json <<EOF
{
  "experiment": "d2-load vs ${NODES}-process TCP cluster (${WORKERS} workers, ${OPS} ops, ${KEYS} Zipf keys, replicas ${REPLICAS})",
  "serial": ${SERIAL},
  "pipelined": ${PIPELINED},
  "pipelined_speedup": ${SPEEDUP}
}
EOF
echo "==> wrote BENCH_wire.json (pipelined ${SPEEDUP}x serial: ${T_SER} -> ${T_PIP} ops/s)"
