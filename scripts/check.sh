#!/usr/bin/env bash
# The local CI gauntlet: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> d2-ec coder gate (unit + property tests)"
cargo test -q -p d2-ec

echo "==> d2-dst smoke sweep (64 seeds)"
./target/release/d2-dst sweep --seeds 64

echo "==> d2-dst erasure-mode sweep (32 seeds, (3,6) fragments, throttled repair)"
./target/release/d2-dst sweep --seeds 32 --ec 3/6 --repair-budget 5000

echo "==> d2-dst mixed-world sweep (64 seeds: partitions, gray nodes, WAN, skew)"
./target/release/d2-dst sweep --seeds 64 --world mixed

echo "==> telemetry smoke (3-node cluster scrape, merged snapshot JSON)"
cargo run --release --quiet --example telemetry >/dev/null

echo "==> d2-load smoke (small pipelined run vs 3-process TCP cluster)"
SMOKE_TMP="$(mktemp -d)"
SMOKE_PIDS=()
smoke_cleanup() {
    for p in "${SMOKE_PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$SMOKE_TMP"
}
trap smoke_cleanup EXIT
./target/release/d2-node serve --listen 127.0.0.1:0 --pos 0.17 --replicas 2 \
    > "$SMOKE_TMP/n0.out" 2>/dev/null &
SMOKE_PIDS+=($!)
for _ in $(seq 1 50); do
    grep -q LISTEN "$SMOKE_TMP/n0.out" 2>/dev/null && break
    sleep 0.1
done
SMOKE_SEED=$(grep -oE '[0-9.]+:[0-9]+' "$SMOKE_TMP/n0.out" | head -1)
for pos in 0.50 0.83; do
    ./target/release/d2-node serve --listen 127.0.0.1:0 --seed "$SMOKE_SEED" \
        --pos "$pos" --replicas 2 > /dev/null 2>&1 &
    SMOKE_PIDS+=($!)
done
sleep 2
./target/release/d2-load --node "$SMOKE_SEED" --workers 2 --ops 200 --keys 32 \
    --replicas 2 --timeout-ms 5000 | grep throughput

echo "==> serve-many smoke (256 nodes in one process: boot, puts, invariants, drain)"
./target/release/d2-node serve-many --nodes 256 --replicas 3 \
    > "$SMOKE_TMP/many.out" 2>&1 &
MANY_PID=$!
SMOKE_PIDS+=("$MANY_PID")
for _ in $(seq 1 240); do
    grep -q "^STABLE" "$SMOKE_TMP/many.out" 2>/dev/null && break
    kill -0 "$MANY_PID" 2>/dev/null || { cat "$SMOKE_TMP/many.out"; exit 1; }
    sleep 0.5
done
grep -q "^STABLE" "$SMOKE_TMP/many.out" || {
    echo "serve-many never stabilized:"; cat "$SMOKE_TMP/many.out"; exit 1; }
MANY_ENTRY=$(awk '/^LISTEN/ { print $2; exit }' "$SMOKE_TMP/many.out")
./target/release/d2-load --node "$MANY_ENTRY" --workers 2 --ops 100 --keys 25 \
    --get-ratio 0 --replicas 3 --timeout-ms 10000 | grep throughput
./target/release/d2-node check --node "$MANY_ENTRY" --expect 256
./target/release/d2-node stop --node "$MANY_ENTRY" --all
for _ in $(seq 1 60); do
    kill -0 "$MANY_PID" 2>/dev/null || break
    sleep 0.5
done
kill -0 "$MANY_PID" 2>/dev/null && { echo "serve-many did not exit after stop --all"; exit 1; }

echo "OK"
