#!/usr/bin/env bash
# The local CI gauntlet: formatting, lints, and the full test suite.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> d2-dst smoke sweep (64 seeds)"
./target/release/d2-dst sweep --seeds 64

echo "==> telemetry smoke (3-node cluster scrape, merged snapshot JSON)"
cargo run --release --quiet --example telemetry >/dev/null

echo "OK"
