#!/usr/bin/env bash
# The deep deterministic-simulation sweep: 1000 seeds per world regime
# against the full fault mix, writing machine-readable summaries for
# dashboards.
#
#   ./scripts/dst.sh                          # all regimes, seeds 0..1000
#   ./scripts/dst.sh 5000 2000 out.json       # 5000 seeds from 2000, all regimes
#   ./scripts/dst.sh 1000 0 out.json wan      # one regime only
#
# With WORLD=all (the default), every regime — classic, partition,
# gray, wan, skew, mixed — is swept and each writes its own summary
# next to OUT (dst-sweep.json -> dst-sweep.partition.json, ...).
# Exits nonzero if any seed in any regime fails; the sweep output then
# contains the failing seed, its shrunk fault plan, and the exact
# replay command (see EXPERIMENTS.md, "Replaying a failing schedule").
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-1000}"
SEED0="${2:-0}"
OUT="${3:-dst-sweep.json}"
WORLD="${4:-all}"

cargo build --release -p d2-dst --quiet

if [ "$WORLD" != "all" ]; then
    ./target/release/d2-dst sweep --seeds "$SEEDS" --seed0 "$SEED0" \
        --world "$WORLD" --json "$OUT"
    exit 0
fi

STATUS=0
for regime in classic partition gray wan skew mixed; do
    regime_out="${OUT%.json}.${regime}.json"
    echo "==> $regime worlds -> $regime_out"
    ./target/release/d2-dst sweep --seeds "$SEEDS" --seed0 "$SEED0" \
        --world "$regime" --json "$regime_out" || STATUS=$?
done
exit "$STATUS"
