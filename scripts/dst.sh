#!/usr/bin/env bash
# The deep deterministic-simulation sweep: 1000 seeds against the full
# fault mix, writing a machine-readable summary for dashboards.
#
#   ./scripts/dst.sh                      # seeds 0..1000 -> dst-sweep.json
#   ./scripts/dst.sh 5000 2000 out.json   # 5000 seeds from 2000 -> out.json
#
# Exits nonzero if any seed fails; the sweep output then contains the
# failing seed, its shrunk fault plan, and the exact replay command
# (see EXPERIMENTS.md, "Replaying a failing schedule").
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-1000}"
SEED0="${2:-0}"
OUT="${3:-dst-sweep.json}"

cargo build --release -p d2-dst --quiet
./target/release/d2-dst sweep --seeds "$SEEDS" --seed0 "$SEED0" --json "$OUT"
