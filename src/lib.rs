//! # D2: a defragmented DHT-based distributed file system
//!
//! This is the facade crate for a from-scratch Rust reproduction of
//! *Defragmenting DHT-based Distributed File Systems* (Pang, Gibbons,
//! Kaminsky, Seshan, Yu — ICDCS 2007 / CMU-CS-07-115).
//!
//! It re-exports every subsystem crate so that downstream users can depend
//! on a single crate:
//!
//! - [`types`] — 512-bit ring keys, SHA-256, and the locality-preserving
//!   key encoding of Figure 4.
//! - [`ring`] — a Mercury-style DHT ring with successor lists, long links,
//!   recursive routing, and Karger–Ruhl active load balancing.
//! - [`store`] — the replicated block store (D2-Store) with lookup caches
//!   and block pointers.
//! - [`ec`] — the erasure-coded redundancy backend: a systematic
//!   Reed–Solomon coder over GF(2^8) and the `RedundancyPolicy`
//!   replication-vs-coding abstraction.
//! - [`fs`] — the CFS-style file-system layer (D2-FS) with root/directory/
//!   inode/data blocks and a 30-second write-back cache.
//! - [`sim`] — the discrete-event simulator (network latency, access-link
//!   bandwidth, TCP slow-start model, failure traces).
//! - [`workload`] — synthetic Harvard/HP/Web trace generators and task
//!   segmentation.
//! - [`core`] — node composition (`D2`, `Traditional`, `TraditionalFile`)
//!   and cluster simulation drivers.
//! - [`wire`] — the live-deployment wire layer: versioned binary codec,
//!   `Transport` trait (in-process channels or TCP), request/response
//!   client, and `net.*` metrics.
//! - [`net`] — the live deployment: the same protocol state machine run
//!   thread-per-node over channels or process-per-node over TCP, plus
//!   the `d2-node` cluster binary.
//! - [`obs`] — structured tracing and metrics: registry, histograms,
//!   and deterministic per-lookup JSONL trace export.
//! - [`experiments`] — one driver per table/figure of the paper.
//! - [`dst`] — deterministic simulation testing: the real node runtime
//!   over a simulated transport and virtual clock, seed-driven fault
//!   injection, ring/storage invariants, and fault-plan shrinking.
//!
//! ## Quickstart
//!
//! ```
//! use d2::core::{ClusterConfig, SimCluster, SystemKind};
//!
//! // Build a 32-node D2 cluster inside the discrete-event simulator,
//! // write a small file tree, and read it back.
//! let cfg = ClusterConfig { nodes: 32, seed: 7, ..ClusterConfig::default() };
//! let mut cluster = SimCluster::new(SystemKind::D2, &cfg);
//! cluster.create_volume("home");
//! cluster.write_file("home", "/docs/notes.txt", b"defragmented!");
//! cluster.flush();
//! let data = cluster.read_file("home", "/docs/notes.txt").unwrap();
//! assert_eq!(data, b"defragmented!");
//! ```

pub use d2_core as core;
pub use d2_dst as dst;
pub use d2_ec as ec;
pub use d2_experiments as experiments;
pub use d2_fs as fs;
pub use d2_net as net;
pub use d2_obs as obs;
pub use d2_ring as ring;
pub use d2_sim as sim;
pub use d2_store as store;
pub use d2_types as types;
pub use d2_wire as wire;
pub use d2_workload as workload;
