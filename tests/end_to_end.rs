//! End-to-end integration: the full stack (fs → store → ring → sim)
//! working together on a simulated cluster, under all three systems.

use d2::core::{ClusterConfig, SimCluster, SystemKind};
use d2::sim::SimTime;
use d2::types::D2Error;

fn all_systems() -> [SystemKind; 3] {
    [
        SystemKind::D2,
        SystemKind::Traditional,
        SystemKind::TraditionalFile,
    ]
}

#[test]
fn volume_lifecycle_on_cluster() {
    for system in all_systems() {
        let cfg = ClusterConfig {
            nodes: 24,
            replicas: 3,
            seed: 9,
            ..Default::default()
        };
        let mut cluster = SimCluster::new(system, &cfg);
        cluster.create_volume("vol");
        // A mixed tree: inline, single-block, and multi-block files.
        cluster.write_file("vol", "/etc/motd", b"tiny");
        cluster.write_file("vol", "/bin/tool", &vec![1u8; 6_000]);
        cluster.write_file("vol", "/data/big", &vec![2u8; 50_000]);
        cluster.flush();

        assert_eq!(cluster.read_file("vol", "/etc/motd").unwrap(), b"tiny");
        assert_eq!(
            cluster.read_file("vol", "/bin/tool").unwrap(),
            vec![1u8; 6_000]
        );
        assert_eq!(
            cluster.read_file("vol", "/data/big").unwrap(),
            vec![2u8; 50_000]
        );
        assert!(matches!(
            cluster.read_file("vol", "/missing"),
            Err(D2Error::NoSuchPath(_))
        ));
    }
}

#[test]
fn data_survives_minority_failures() {
    let cfg = ClusterConfig {
        nodes: 30,
        replicas: 3,
        seed: 4,
        ..Default::default()
    };
    let mut cluster = SimCluster::new(SystemKind::D2, &cfg);
    cluster.create_volume("v");
    for i in 0..10 {
        cluster.write_file("v", &format!("/dir/file{i}"), &vec![i as u8; 12_000]);
    }
    cluster.flush();

    // Kill 5 nodes, each the currently busiest, so every failure is
    // guaranteed to hit live data regardless of where the RNG placed
    // the node IDs (D2 concentrates a volume on few nodes — scattered
    // victims can miss it entirely). Failures are spaced out, so
    // regeneration restores full replication between kills.
    for k in 0..5u64 {
        let nodes = cluster.ring.nodes();
        let loads = cluster.total_load_blocks();
        let victim = nodes
            .iter()
            .zip(&loads)
            .max_by_key(|(_, &l)| l)
            .map(|(&n, _)| n)
            .expect("cluster has nodes");
        cluster.now = SimTime::from_secs(600 * (k + 1));
        let now = cluster.now;
        cluster.node_down(victim, now);
    }

    for i in 0..10 {
        let data = cluster.read_file("v", &format!("/dir/file{i}")).unwrap();
        assert_eq!(data, vec![i as u8; 12_000], "file {i} lost after failures");
    }
    assert!(
        cluster.stats.regenerated_blocks > 0,
        "failures should trigger regeneration"
    );
}

#[test]
fn balancing_preserves_fs_readability() {
    let cfg = ClusterConfig {
        nodes: 16,
        replicas: 3,
        seed: 12,
        ..Default::default()
    };
    let mut cluster = SimCluster::new(SystemKind::D2, &cfg);
    cluster.create_volume("v");
    // Write enough clustered data to trigger real balancing.
    for i in 0..40 {
        cluster.write_file("v", &format!("/proj/src/mod{i}.rs"), &vec![7u8; 16_000]);
    }
    cluster.flush();

    let mut now = SimTime::ZERO;
    for _ in 0..30 {
        now += cluster.cfg.probe_interval;
        cluster.run_balance_round(now, false);
        cluster.resolve_stale_pointers(now);
    }
    cluster.now = now;
    assert!(
        cluster.stats.balance_moves > 0,
        "skewed data should force moves"
    );

    for i in 0..40 {
        let data = cluster
            .read_file("v", &format!("/proj/src/mod{i}.rs"))
            .unwrap();
        assert_eq!(
            data,
            vec![7u8; 16_000],
            "file {i} unreadable after balancing"
        );
    }
}

#[test]
fn rename_and_overwrite_through_the_full_stack() {
    let cfg = ClusterConfig {
        nodes: 12,
        replicas: 3,
        seed: 3,
        ..Default::default()
    };
    let mut cluster = SimCluster::new(SystemKind::D2, &cfg);
    cluster.create_volume("v");
    cluster.write_file("v", "/a/orig.bin", &vec![1u8; 20_000]);
    cluster.flush();

    // Rename keeps the original keys; only metadata republishes.
    {
        let bytes_before = cluster.stats.write_bytes;
        // Access the volume's Fs through the public facade: re-write under
        // the new path by rename is not exposed on SimCluster, so emulate
        // a user-level move: read, write to the new path, delete the old.
        let data = cluster.read_file("v", "/a/orig.bin").unwrap();
        cluster.write_file("v", "/b/moved.bin", &data);
        cluster.flush();
        assert!(cluster.stats.write_bytes > bytes_before);
    }
    assert_eq!(
        cluster.read_file("v", "/b/moved.bin").unwrap(),
        vec![1u8; 20_000]
    );

    // Overwrite: new version readable, write traffic accounted.
    cluster.now = SimTime::from_secs(120);
    cluster.write_file("v", "/b/moved.bin", &vec![9u8; 8_000]);
    cluster.flush();
    assert_eq!(
        cluster.read_file("v", "/b/moved.bin").unwrap(),
        vec![9u8; 8_000]
    );
}

#[test]
fn d2_concentrates_a_volume_traditional_scatters_it() {
    let mut spread = Vec::new();
    for system in [SystemKind::D2, SystemKind::Traditional] {
        let cfg = ClusterConfig {
            nodes: 40,
            replicas: 3,
            seed: 5,
            ..Default::default()
        };
        let mut cluster = SimCluster::new(system, &cfg);
        cluster.create_volume("v");
        for i in 0..12 {
            cluster.write_file("v", &format!("/docs/ch{i}.txt"), &vec![3u8; 24_000]);
        }
        cluster.flush();
        let busy = cluster
            .total_load_blocks()
            .iter()
            .filter(|&&l| l > 0)
            .count();
        spread.push(busy);
    }
    assert!(
        spread[0] * 2 <= spread[1],
        "d2 spread {} should be far below traditional {}",
        spread[0],
        spread[1]
    );
}
