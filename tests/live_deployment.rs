//! Integration: a full D2-FS volume published into the *live* threaded
//! deployment — fs blocks flowing through real joins, stabilization, and
//! recursive lookups.

use d2::fs::{BlockIo, Fs, FsConfig, VolumeReader};
use d2::net::Deployment;
use d2::sim::SimTime;
use d2::types::{BlockName, D2Error, Key, Result, SystemKind};

/// Adapter: D2-FS block IO over the live deployment.
struct NetIo<'a> {
    dep: &'a Deployment,
    system: SystemKind,
}

impl BlockIo for NetIo<'_> {
    fn put(&mut self, name: &BlockName, data: Vec<u8>, _now: SimTime) -> Result<()> {
        self.dep.put(self.system.key_of(name), data)
    }

    fn get(&mut self, key: &Key, _now: SimTime) -> Result<Vec<u8>> {
        self.dep.get(*key).map_err(|_| D2Error::NotFound(*key))
    }

    fn remove(&mut self, _key: &Key, _now: SimTime, _delay: SimTime) -> Result<()> {
        // The demo deployment keeps removed blocks until TTL; fine for
        // this test (stale blocks are never referenced again).
        Ok(())
    }
}

#[test]
fn fs_volume_over_live_ring() {
    let dep = Deployment::launch(24, 3);
    dep.wait_stable();

    let system = SystemKind::D2;
    let mut io = NetIo { dep: &dep, system };
    let mut fs = Fs::new("livevol", b"publisher", FsConfig::new(system));
    fs.write(
        &mut io,
        "/www/index.html",
        b"<h1>d2</h1>".to_vec(),
        SimTime::ZERO,
    )
    .unwrap();
    fs.write(&mut io, "/www/big.css", vec![b'c'; 20_000], SimTime::ZERO)
        .unwrap();
    fs.flush(&mut io, SimTime::ZERO).unwrap();

    // No settling sleep: puts return only once the whole replica chain
    // has acked, so the reader below sees every copy.

    // An independent reader (fresh adapter) verifies the whole chain
    // through real lookups.
    let mut reader_io = NetIo { dep: &dep, system };
    let reader = VolumeReader::new("livevol", b"publisher", system);
    assert_eq!(
        reader
            .read_file(&mut reader_io, "/www/index.html", SimTime::ZERO)
            .unwrap(),
        b"<h1>d2</h1>"
    );
    assert_eq!(
        reader
            .read_file(&mut reader_io, "/www/big.css", SimTime::ZERO)
            .unwrap(),
        vec![b'c'; 20_000]
    );
    let mut names = reader
        .list_dir(&mut reader_io, "/www", SimTime::ZERO)
        .unwrap();
    names.sort();
    assert_eq!(names, vec!["big.css", "index.html"]);

    // Wrong publisher secret is rejected end-to-end.
    let bad = VolumeReader::new("livevol", b"mallory", system);
    assert_eq!(
        bad.read_file(&mut reader_io, "/www/index.html", SimTime::ZERO),
        Err(D2Error::BadSignature)
    );

    dep.shutdown();
}

#[test]
fn live_ring_locality_of_d2_keys() {
    // Blocks of one directory land on a handful of adjacent live nodes.
    let dep = Deployment::launch(32, 3);
    dep.wait_stable();

    let system = SystemKind::D2;
    let mut io = NetIo { dep: &dep, system };
    let mut fs = Fs::new("loc", b"s", FsConfig::new(system));
    for i in 0..8 {
        fs.write(
            &mut io,
            &format!("/photos/img{i}.raw"),
            vec![i as u8; 9_000],
            SimTime::ZERO,
        )
        .unwrap();
    }
    fs.flush(&mut io, SimTime::ZERO).unwrap();

    let statuses = dep.statuses();
    let busy = statuses.iter().filter(|s| s.blocks > 0).count();
    // 8 files × (inode + 2 data blocks) + metadata, r=3: under D2 these
    // cluster onto a small neighbourhood, not the whole ring.
    assert!(
        busy <= statuses.len() / 2,
        "d2 blocks should cluster: {busy}/{} nodes hold data",
        statuses.len()
    );
    dep.shutdown();
}
