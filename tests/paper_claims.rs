//! The paper's headline claims, checked end-to-end at quick scale:
//!
//! 1. D2 reduces the number of nodes a task touches by ~an order of
//!    magnitude (Table 2 / Figure 3).
//! 2. D2's task unavailability under failures is at or below both
//!    baselines' (Figure 7), and fewer users are affected (Figure 8).
//! 3. D2 cuts lookup traffic dramatically (Figure 9) via lookup caches
//!    whose miss rate stays low (Figure 13).
//! 4. D2 improves sequential user-perceived latency (Figure 10).
//! 5. Active balancing keeps D2's storage near Traditional+Merc's
//!    balance despite locality keys (Figure 16), at migration cost on
//!    the order of the write traffic (Table 4).

use d2::experiments::balance_sim::BalanceSystem;
use d2::experiments::fig16_17::ALL_SYSTEMS;
use d2::experiments::perf_suite::{self, SuiteConfig};
use d2::experiments::{fig16_17, fig7, table2, table4, Scale};
use d2::sim::{FailureModel, SimTime};
use d2::workload::HarvardTrace;
use d2_core::{Parallelism, SystemKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trace() -> HarvardTrace {
    HarvardTrace::generate(&Scale::Quick.harvard(), &mut StdRng::seed_from_u64(42))
}

#[test]
fn claim_defragmentation_cuts_nodes_per_task() {
    let trace = trace();
    let cfg = Scale::Quick.cluster(7);
    let t = table2::run(&trace, &cfg, &[SimTime::from_secs(5)], 0.05);
    let row = &t.rows[0];
    assert!(
        row.nodes_d2 * 2.0 < row.nodes_block,
        "D2 nodes/task {} vs traditional {}",
        row.nodes_d2,
        row.nodes_block
    );
    assert!(row.nodes_file <= row.nodes_block + 1e-9);
}

#[test]
fn claim_availability_ordering_holds() {
    // The validated quick-scale availability regime (see d2-bench's
    // availability_fixture): 12 users / 2 days / 32 nodes with a stressed
    // correlated-failure model, warmed for a full simulated day.
    let hcfg = d2::workload::HarvardConfig {
        users: 12,
        days: 2.0,
        initial_bytes: 64 << 20,
        reads_per_user_hour: 60.0,
        ..d2::workload::HarvardConfig::default()
    };
    let trace = HarvardTrace::generate(&hcfg, &mut StdRng::seed_from_u64(42));
    let cfg = d2::core::ClusterConfig {
        nodes: 32,
        replicas: 3,
        seed: 7,
        ..d2::core::ClusterConfig::default()
    };
    let model = FailureModel {
        mttf_secs: 2.0 * 86_400.0,
        mttr_secs: 3.0 * 3600.0,
        correlated_events: 6.0,
        correlated_fraction: 0.25,
        correlated_mttr_secs: 2.0 * 3600.0,
        duration_secs: hcfg.days * 86_400.0,
    };
    let inter = SimTime::from_secs(5);
    let fig = fig7::run(&trace, &cfg, &model, &[inter], 2, 1.0, 100);
    let d2 = fig.cell(SystemKind::D2, inter).unwrap().mean();
    let trad = fig.cell(SystemKind::Traditional, inter).unwrap().mean();
    let file = fig.cell(SystemKind::TraditionalFile, inter).unwrap().mean();
    assert!(
        d2 < trad,
        "d2 {d2} must be below traditional {trad} (paper: an order of magnitude)"
    );
    assert!(d2 <= file + 1e-9, "d2 {d2} vs traditional-file {file}");
    assert!(trad > 0.0, "regime must actually produce failures");
}

#[test]
fn claim_lookup_savings_and_seq_speedup() {
    let trace = trace();
    let cfg = SuiteConfig {
        sizes: vec![24],
        kbps: vec![1500],
        measure_groups: 120,
        seed: 7,
        warmup_days: 0.05,
        systems: vec![SystemKind::D2, SystemKind::Traditional],
        ..SuiteConfig::default()
    };
    let suite = perf_suite::run(&trace, &cfg);
    let d2 = suite
        .cell(SystemKind::D2, 24, 1500, Parallelism::Seq)
        .unwrap();
    let trad = suite
        .cell(SystemKind::Traditional, 24, 1500, Parallelism::Seq)
        .unwrap();

    // Lookup traffic reduction (paper: up to 95%; at tiny scale demand a
    // solid majority).
    assert!(
        (d2.lookup_messages as f64) < 0.5 * trad.lookup_messages as f64,
        "d2 msgs {} vs traditional {}",
        d2.lookup_messages,
        trad.lookup_messages
    );
    // Miss-rate gap (paper: 13% vs 47%+).
    assert!(d2.cache_miss_rate() < trad.cache_miss_rate());
    // Sequential speedup > 1 (paper: 1.3–2.0 depending on size).
    let s = suite
        .speedup(
            SystemKind::D2,
            SystemKind::Traditional,
            24,
            1500,
            Parallelism::Seq,
        )
        .unwrap();
    assert!(s > 1.05, "sequential speedup {s} should be solidly above 1");
}

#[test]
fn claim_balance_and_overhead() {
    let trace = trace();
    let web = d2::workload::WebTrace::generate(&Scale::Quick.web(), &mut StdRng::seed_from_u64(42));
    let cfg = Scale::Quick.cluster(7);
    let warmup = SimTime::from_secs(12 * 3600);

    let fig = fig16_17::fig16(&trace, &cfg, &ALL_SYSTEMS, warmup);
    let d2 = fig.tail_mean(BalanceSystem::D2, 0.3).unwrap();
    let tf = fig.tail_mean(BalanceSystem::TraditionalFile, 0.3).unwrap();
    assert!(d2 < tf, "d2 imbalance {d2} must beat traditional-file {tf}");

    let t4 = table4::run(&trace, &web, &cfg, warmup);
    for w in &t4.workloads {
        assert!(w.total_write() > 0.0);
        assert!(
            w.overhead_ratio() < 6.0,
            "{}: migration {}x writes is out of band",
            w.workload,
            w.overhead_ratio()
        );
    }
}
